package fleet

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"act/internal/core"
	"act/internal/deps"
	"act/internal/obs"
	"act/internal/ranking"
	"act/internal/wire"
)

// CollectorConfig parameterizes a Collector.
type CollectorConfig struct {
	// MaxPayload caps a frame's payload per connection; 0 means
	// wire.DefaultMaxPayload. It bounds per-connection memory.
	MaxPayload int
	// ReadTimeout is the per-read deadline on agent connections; an
	// agent silent for longer is disconnected (it will redial and the
	// dedup makes redelivery harmless); default 2 minutes.
	ReadTimeout time.Duration
	// MaxConns caps concurrent agent connections; excess connections
	// are accepted and immediately closed; default 256.
	MaxConns int

	// SeqLen is N for the Correct Set used in pruning and match
	// counting; default 3, or inferred from the first ingested entry
	// when that is longer.
	SeqLen int
	// CorrectPrune is the number of distinct correct runs that must
	// have logged a sequence before it is pruned as a known false
	// positive; default 1.
	CorrectPrune int
	// BaseCorrect seeds the Correct Set from trace-derived sequences
	// (the paper's offline postprocessing input), merged with what
	// correct-run agents report. Optional.
	BaseCorrect *deps.SeqSet

	// Strategy orders candidates within equal cross-run counts;
	// default MostMatched (the paper's choice).
	Strategy ranking.Strategy

	// SnapshotPath, when set, is where Snapshot persists the aggregate
	// state (atomically: temp file + rename) and where NewCollector
	// reloads it from.
	SnapshotPath string
}

func (c CollectorConfig) withDefaults() CollectorConfig {
	if c.MaxPayload <= 0 {
		c.MaxPayload = wire.DefaultMaxPayload
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 2 * time.Minute
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 256
	}
	if c.SeqLen <= 0 {
		c.SeqLen = 3
	}
	if c.CorrectPrune <= 0 {
		c.CorrectPrune = 1
	}
	return c
}

// CollectorStats counts a collector's activity.
type CollectorStats struct {
	Conns        uint64 // connections accepted
	Rejected     uint64 // connections refused at the MaxConns cap
	Batches      uint64 // batches ingested
	DupBatches   uint64 // redelivered batches dropped by dedup
	Entries      uint64 // entries ingested (before per-run dedup)
	BadSpans     uint64 // corrupt spans skipped across all connections
	SkippedBytes uint64 // bytes discarded across all connections
}

// seqAgg is the collector's per-sequence aggregate.
type seqAgg struct {
	entry       core.DebugEntry     // most negative output observed
	failRuns    map[uint64]struct{} // failing runs that logged it
	correctRuns map[uint64]struct{} // correct runs that logged it
}

// Collector aggregates batches from a fleet of agents. All exported
// methods are safe for concurrent use.
type Collector struct {
	cfg CollectorConfig

	mu       sync.Mutex
	seen     map[uint64]struct{}     // guarded by mu; ingested batch keys (dedup)
	agg      map[uint64]*seqAgg      // guarded by mu; by sequence hash (deps.Sequence.Hash)
	outcomes map[uint64]wire.Outcome // guarded by mu
	pending  map[uint64][]uint64     // guarded by mu; sequence hashes logged by still-unknown runs
	stats    CollectorStats          // guarded by mu
	conns    int                     // guarded by mu

	lnMu sync.Mutex
	ln   net.Listener // guarded by lnMu

	// ingestNS times batch merges (act_collector_ingest_ns). The
	// histogram is internally atomic, so it lives outside mu.
	ingestNS obs.Histogram
}

// NewCollector creates a collector, loading the snapshot at
// cfg.SnapshotPath when one exists. A damaged snapshot is ignored (the
// collector starts empty) rather than fatal: it is a cache of evidence
// the fleet keeps resupplying.
func NewCollector(cfg CollectorConfig) *Collector {
	c := &Collector{
		cfg:      cfg.withDefaults(),
		seen:     make(map[uint64]struct{}),
		agg:      make(map[uint64]*seqAgg),
		outcomes: make(map[uint64]wire.Outcome),
		pending:  make(map[uint64][]uint64),
	}
	if c.cfg.SnapshotPath != "" {
		c.loadSnapshot(c.cfg.SnapshotPath) // best effort
	}
	return c
}

// Stats returns a copy of the activity counters.
func (c *Collector) Stats() CollectorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Sequences returns the number of distinct sequences aggregated
// (act_collector_sequences).
func (c *Collector) Sequences() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.agg)
}

// Runs returns the number of distinct runs seen, decided or not
// (act_collector_runs).
func (c *Collector) Runs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.outcomes)
}

// Ingest merges one batch into the aggregate. Redelivered batches
// (same agent, run and sequence number) are dropped. Exported for
// in-process fleets and tests; the TCP path funnels here too.
func (c *Collector) Ingest(b *wire.Batch) {
	sp := obs.StartSpan(&c.ingestNS)
	defer sp.End()
	c.mu.Lock()
	defer c.mu.Unlock()
	key := b.Key()
	if _, dup := c.seen[key]; dup {
		c.stats.DupBatches++
		return
	}
	c.seen[key] = struct{}{}
	c.stats.Batches++
	c.stats.Entries += uint64(len(b.Entries))

	run := b.RunKey()
	c.noteOutcomeLocked(run, b.Outcome)
	outcome := c.outcomes[run]
	for _, e := range b.Entries {
		c.noteEntryLocked(run, outcome, e)
	}
}

// noteOutcomeLocked records a run's outcome; a late flip from Unknown
// re-files the run's sequences under the decided side.
//
//act:locked mu
func (c *Collector) noteOutcomeLocked(run uint64, o wire.Outcome) {
	prev := c.outcomes[run]
	if o == wire.OutcomeUnknown || o == prev {
		return
	}
	c.outcomes[run] = o
	if prev == wire.OutcomeUnknown {
		for _, k := range c.pending[run] {
			if agg, ok := c.agg[k]; ok {
				c.fileRunLocked(agg, run, o)
			}
		}
		delete(c.pending, run)
	}
}

// noteEntryLocked merges one entry under the run's current outcome.
//
//act:locked mu
func (c *Collector) noteEntryLocked(run uint64, outcome wire.Outcome, e core.DebugEntry) {
	k := e.Seq.Hash()
	agg, ok := c.agg[k]
	if !ok {
		agg = &seqAgg{entry: e}
		c.agg[k] = agg
	} else if e.Output < agg.entry.Output {
		agg.entry = e
	}
	if outcome == wire.OutcomeUnknown {
		c.pending[run] = append(c.pending[run], k)
		return
	}
	c.fileRunLocked(agg, run, outcome)
}

// fileRunLocked adds run to the aggregate's failing or correct set.
//
//act:locked mu
func (c *Collector) fileRunLocked(agg *seqAgg, run uint64, o wire.Outcome) {
	switch o {
	case wire.OutcomeFailing:
		if agg.failRuns == nil {
			agg.failRuns = make(map[uint64]struct{})
		}
		agg.failRuns[run] = struct{}{}
	case wire.OutcomeCorrect:
		if agg.correctRuns == nil {
			agg.correctRuns = make(map[uint64]struct{})
		}
		agg.correctRuns[run] = struct{}{}
	case wire.OutcomeUnknown:
		// Callers file runs only after an outcome is decided
		// (undecided runs park in pending); an Unknown here is a
		// caller bug, but filing it on either side would corrupt the
		// failing/correct occurrence counts, so it is dropped.
	}
}

// Report builds the fleet-wide ranked report: sequences logged by
// enough correct runs join the Correct Set and prune their failing-run
// twins (plus any trace-derived BaseCorrect sequences); the survivors
// are ranked by ranking.RankWith under the configured strategy, then
// weighted so sequences seen in many distinct failing runs rank first.
func (c *Collector) Report() *ranking.Report {
	c.mu.Lock()
	defer c.mu.Unlock()

	keys := c.sortedAggKeysLocked()
	correct := c.correctSetLocked(keys)
	var debug []core.DebugEntry
	runsOf := make(map[uint64]int)
	for _, k := range keys {
		agg := c.agg[k]
		if len(agg.failRuns) > 0 {
			debug = append(debug, agg.entry)
			runsOf[k] = len(agg.failRuns)
		}
	}
	rep := ranking.RankWith(debug, correct, c.cfg.Strategy)
	for i := range rep.Ranked {
		rep.Ranked[i].Runs = runsOf[rep.Ranked[i].Entry.Seq.Hash()]
	}
	rep.WeightByRuns()
	return rep
}

// TopK returns the head of the ranking Report would produce — the same
// Correct-Set pruning, strategy order and cross-run weighting — without
// materializing and sorting the full candidate list: survivors stream
// through a ranking.TopK selector, O(n log k). This is the rollup's and
// the benchmark's fast path; Report remains the full-fidelity one.
func (c *Collector) TopK(k int) []ranking.Candidate {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := c.sortedAggKeysLocked()
	correct := c.correctSetLocked(keys)
	sel := ranking.NewTopK(k, c.cfg.Strategy)
	for _, key := range keys {
		agg := c.agg[key]
		if len(agg.failRuns) == 0 || correct.Contains(agg.entry.Seq) {
			continue
		}
		sel.Push(ranking.Candidate{
			Entry:   agg.entry,
			Matches: correct.MatchCount(agg.entry.Seq),
			Runs:    len(agg.failRuns),
		})
	}
	return sel.Candidates()
}

// sortedAggKeysLocked returns the aggregate's sequence hashes in
// ascending order — the deterministic iteration order every consumer
// of the aggregate uses.
//
//act:locked mu
func (c *Collector) sortedAggKeysLocked() []uint64 {
	keys := make([]uint64, 0, len(c.agg))
	for k := range c.agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// correctSetLocked builds the Correct Set over the aggregate: sequences
// logged by enough distinct correct runs, plus any trace-derived
// BaseCorrect sequences.
//
//act:locked mu
func (c *Collector) correctSetLocked(keys []uint64) *deps.SeqSet {
	n := c.cfg.SeqLen
	for _, k := range keys {
		if l := len(c.agg[k].entry.Seq); l > n {
			n = l
		}
	}
	correct := deps.NewSeqSet(n)
	for _, k := range keys {
		agg := c.agg[k]
		if len(agg.correctRuns) >= c.cfg.CorrectPrune {
			correct.Add(agg.entry.Seq)
		}
		if c.cfg.BaseCorrect != nil && c.cfg.BaseCorrect.Contains(agg.entry.Seq) {
			correct.Add(agg.entry.Seq)
		}
	}
	return correct
}

// ReadFrom ingests one connection's wire stream from r — the transport-
// independent half of serving, used directly by tests and fault
// campaigns. Corruption is skipped frame-wise and counted; the error
// reflects only protocol-level failures (wrong magic/version) or
// transport errors other than end-of-stream.
func (c *Collector) IngestStream(r io.Reader) (wire.StreamReport, error) {
	rd := wire.NewReader(r, c.cfg.MaxPayload)
	var err error
	for {
		var b *wire.Batch
		b, err = rd.Next()
		if err != nil {
			break
		}
		c.Ingest(b)
	}
	rep := rd.Report()
	c.mu.Lock()
	c.stats.BadSpans += uint64(rep.BadSpans)
	c.stats.SkippedBytes += uint64(rep.SkippedBytes)
	c.mu.Unlock()
	if err == io.EOF {
		err = nil
	}
	return rep, err
}

// Serve accepts agent connections on l until Shutdown (or a fatal
// accept error). Each connection is handled concurrently, bounded by
// MaxConns, with the configured read deadline.
func (c *Collector) Serve(l net.Listener) error {
	c.lnMu.Lock()
	c.ln = l
	c.lnMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			c.lnMu.Lock()
			closed := c.ln == nil
			c.lnMu.Unlock()
			if closed {
				return nil // Shutdown
			}
			return err
		}
		c.mu.Lock()
		if c.conns >= c.cfg.MaxConns {
			c.stats.Rejected++
			c.mu.Unlock()
			conn.Close()
			continue
		}
		c.conns++
		c.stats.Conns++
		c.mu.Unlock()
		go func() {
			defer func() {
				conn.Close()
				c.mu.Lock()
				c.conns--
				c.mu.Unlock()
			}()
			c.IngestStream(&deadlineReader{conn: conn, d: c.cfg.ReadTimeout})
		}()
	}
}

// Shutdown stops Serve. In-flight connections finish at their own pace
// (bounded by the read deadline).
func (c *Collector) Shutdown() {
	c.lnMu.Lock()
	ln := c.ln
	c.ln = nil
	c.lnMu.Unlock()
	if ln != nil {
		ln.Close()
	}
}

// deadlineReader arms a fresh read deadline before every read, so the
// per-connection bound is "silent for longer than d", not "connected
// for longer than d".
type deadlineReader struct {
	conn net.Conn
	d    time.Duration
}

func (r *deadlineReader) Read(p []byte) (int, error) {
	r.conn.SetReadDeadline(time.Now().Add(r.d))
	return r.conn.Read(p)
}

// Collector state persistence and merge:
//
//	magic "ACTS" | u16 version=2 | u16 reserved
//	u32 batch-key count | u64 keys
//	u32 run count | per run: u64 run key | u8 outcome
//	u32 aggregate count | per aggregate:
//	  wire entry | u32 failing-run count | u64 run keys |
//	  u32 correct-run count | u64 run keys
//	u32 pending-run count | per run:             (v2; absent in v1)
//	  u64 run key | u32 hash count | u64 sequence hashes
//	u32 crc32(everything after the prologue)
//
// The same bytes serve as the snapshot file and as the shard state a
// rollup node merges (wire MsgState). Version 2 persists the pending
// (outcome-unknown) attributions, so evidence from a run still
// undecided at snapshot time survives a restart and is re-filed when
// the outcome arrives; version 1 states load without a pending section.
//
// Everything in the encoding is sorted, so two collectors holding the
// same evidence export byte-identical state — and because the per-key
// merges below are associative, commutative and idempotent (set unions,
// min-output entry selection), merging shard states in any order, with
// any overlap from failover re-delivery, converges on the state a
// single never-failed collector would hold.

const (
	snapMagic   = "ACTS"
	snapVersion = 2
)

// Snapshot atomically persists the aggregate state to path (or the
// configured SnapshotPath when path is empty).
func (c *Collector) Snapshot(path string) error {
	if path == "" {
		path = c.cfg.SnapshotPath
	}
	if path == "" {
		return fmt.Errorf("fleet: no snapshot path configured")
	}
	tmpPath := path + ".tmp"
	if err := os.WriteFile(tmpPath, c.ExportState(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmpPath, path)
}

// ExportState serializes the collector's aggregate state — the
// checksummed bytes a snapshot file holds and a rollup node merges.
func (c *Collector) ExportState() []byte {
	c.mu.Lock()
	body := c.encodeStateLocked()
	c.mu.Unlock()

	out := append([]byte(snapMagic), 0, 0, 0, 0)
	binary.LittleEndian.PutUint16(out[4:], snapVersion)
	out = append(out, body...)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], crc32.ChecksumIEEE(body))
	return append(out, tmp[:]...)
}

// encodeStateLocked serializes the aggregate for the snapshot file.
//
//act:locked mu
func (c *Collector) encodeStateLocked() []byte {
	var body []byte
	var tmp [8]byte
	u32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		body = append(body, tmp[:4]...)
	}
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		body = append(body, tmp[:]...)
	}
	sortedU64 := func(m map[uint64]struct{}) []uint64 {
		out := make([]uint64, 0, len(m))
		for k := range m {
			out = append(out, k)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}

	keys := make([]uint64, 0, len(c.seen))
	for k := range c.seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	u32(uint32(len(keys)))
	for _, k := range keys {
		u64(k)
	}

	runs := make([]uint64, 0, len(c.outcomes))
	for r := range c.outcomes {
		runs = append(runs, r)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i] < runs[j] })
	u32(uint32(len(runs)))
	for _, r := range runs {
		u64(r)
		body = append(body, byte(c.outcomes[r]))
	}

	aggKeys := make([]uint64, 0, len(c.agg))
	for k := range c.agg {
		aggKeys = append(aggKeys, k)
	}
	sort.Slice(aggKeys, func(i, j int) bool { return aggKeys[i] < aggKeys[j] })
	u32(uint32(len(aggKeys)))
	for _, k := range aggKeys {
		agg := c.agg[k]
		body = wire.AppendEntry(body, agg.entry)
		fr := sortedU64(agg.failRuns)
		u32(uint32(len(fr)))
		for _, r := range fr {
			u64(r)
		}
		cr := sortedU64(agg.correctRuns)
		u32(uint32(len(cr)))
		for _, r := range cr {
			u64(r)
		}
	}

	pendRuns := make([]uint64, 0, len(c.pending))
	for r := range c.pending {
		pendRuns = append(pendRuns, r)
	}
	sort.Slice(pendRuns, func(i, j int) bool { return pendRuns[i] < pendRuns[j] })
	u32(uint32(len(pendRuns)))
	for _, r := range pendRuns {
		u64(r)
		// The in-memory pending list keeps one element per logged entry;
		// re-filing is a set insert, so duplicates collapse to a sorted
		// set here — deterministic bytes, same refile result.
		set := make(map[uint64]struct{}, len(c.pending[r]))
		for _, h := range c.pending[r] {
			set[h] = struct{}{}
		}
		hs := sortedU64(set)
		u32(uint32(len(hs)))
		for _, h := range hs {
			u64(h)
		}
	}
	return body
}

// collectorState is a decoded state blob, detached from any Collector.
type collectorState struct {
	seen     map[uint64]struct{}
	outcomes map[uint64]wire.Outcome
	agg      map[uint64]*seqAgg
	pending  map[uint64][]uint64
}

// decodeState parses bytes produced by ExportState (either version).
// Any damage — short blob, bad magic, checksum mismatch, truncated
// body — returns false.
func decodeState(data []byte) (*collectorState, bool) {
	if len(data) < 8+4 || string(data[:4]) != snapMagic {
		return nil, false
	}
	version := binary.LittleEndian.Uint16(data[4:])
	if version < 1 || version > snapVersion {
		return nil, false
	}
	body, sum := data[8:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, false
	}
	off := 0
	need := func(n int) bool { return len(body)-off >= n }
	u32 := func() uint32 { v := binary.LittleEndian.Uint32(body[off:]); off += 4; return v }
	u64 := func() uint64 { v := binary.LittleEndian.Uint64(body[off:]); off += 8; return v }

	if !need(4) {
		return nil, false
	}
	nSeen := int(u32())
	if !need(nSeen * 8) {
		return nil, false
	}
	st := &collectorState{
		seen:     make(map[uint64]struct{}, nSeen),
		outcomes: make(map[uint64]wire.Outcome),
		agg:      make(map[uint64]*seqAgg),
		pending:  make(map[uint64][]uint64),
	}
	for i := 0; i < nSeen; i++ {
		st.seen[u64()] = struct{}{}
	}

	if !need(4) {
		return nil, false
	}
	nRuns := int(u32())
	if !need(nRuns * 9) {
		return nil, false
	}
	for i := 0; i < nRuns; i++ {
		r := u64()
		st.outcomes[r] = wire.Outcome(body[off])
		off++
	}

	if !need(4) {
		return nil, false
	}
	nAgg := int(u32())
	for i := 0; i < nAgg; i++ {
		e, n, err := wire.DecodeEntry(body[off:])
		if err != nil {
			return nil, false
		}
		off += n
		a := &seqAgg{entry: e}
		if !need(4) {
			return nil, false
		}
		nf := int(u32())
		if !need(nf * 8) {
			return nil, false
		}
		for j := 0; j < nf; j++ {
			if a.failRuns == nil {
				a.failRuns = make(map[uint64]struct{}, nf)
			}
			a.failRuns[u64()] = struct{}{}
		}
		if !need(4) {
			return nil, false
		}
		nc := int(u32())
		if !need(nc * 8) {
			return nil, false
		}
		for j := 0; j < nc; j++ {
			if a.correctRuns == nil {
				a.correctRuns = make(map[uint64]struct{}, nc)
			}
			a.correctRuns[u64()] = struct{}{}
		}
		st.agg[e.Seq.Hash()] = a
	}

	if version >= 2 {
		if !need(4) {
			return nil, false
		}
		nPend := int(u32())
		for i := 0; i < nPend; i++ {
			if !need(8 + 4) {
				return nil, false
			}
			r := u64()
			nh := int(u32())
			if !need(nh * 8) {
				return nil, false
			}
			hs := make([]uint64, 0, nh)
			for j := 0; j < nh; j++ {
				hs = append(hs, u64())
			}
			st.pending[r] = hs
		}
	}
	if off != len(body) {
		return nil, false
	}
	return st, true
}

// loadSnapshot restores state saved by Snapshot. Any damage abandons
// the load and leaves the collector empty.
func (c *Collector) loadSnapshot(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	st, ok := decodeState(data)
	if !ok {
		return false
	}
	c.mu.Lock()
	c.seen, c.outcomes, c.agg, c.pending = st.seen, st.outcomes, st.agg, st.pending
	c.stats.Batches = uint64(len(st.seen)) // dedup set = batches ever accepted
	c.mu.Unlock()
	return true
}

// MergeStats summarizes one merged state blob — the totals the blob
// itself reported, used for per-shard completeness annotations.
type MergeStats struct {
	Batches   int // distinct batch keys the shard had accepted
	Sequences int // distinct sequences it aggregated
	Runs      int // distinct runs it had seen
}

// MergeState unions a peer collector's exported state into this one —
// how a rollup node folds shard aggregates into the fleet-wide view.
// Every per-key operation is a set union or a min-output selection, so
// the merge is associative, commutative and idempotent: shard states
// may arrive in any order and overlap arbitrarily (failover re-routes
// the same batch to two shards) without inflating any count. Pending
// attributions from one shard are re-filed when another shard knew the
// run's outcome.
func (c *Collector) MergeState(data []byte) (MergeStats, error) {
	st, ok := decodeState(data)
	if !ok {
		return MergeStats{}, fmt.Errorf("fleet: merge state: damaged or unrecognized blob")
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	for k := range st.seen {
		c.seen[k] = struct{}{}
	}
	for k, in := range st.agg {
		agg, ok := c.agg[k]
		if !ok {
			agg = &seqAgg{entry: in.entry}
			c.agg[k] = agg
		} else if in.entry.Output < agg.entry.Output {
			agg.entry = in.entry
		}
		for r := range in.failRuns {
			c.fileRunLocked(agg, r, wire.OutcomeFailing)
		}
		for r := range in.correctRuns {
			c.fileRunLocked(agg, r, wire.OutcomeCorrect)
		}
	}
	for r, hs := range st.pending {
		c.pending[r] = append(c.pending[r], hs...)
	}
	// Outcomes last: a decided outcome beats Unknown (noteOutcomeLocked
	// re-files the united pending lists); two conflicting decided
	// outcomes — impossible for a run that truly ran once — resolve to
	// Failing deterministically, never losing failure evidence.
	for r, o := range st.outcomes {
		prev, known := c.outcomes[r]
		switch {
		case !known:
			if o == wire.OutcomeUnknown {
				c.outcomes[r] = o // record the run; nothing to file yet
			} else {
				c.noteOutcomeLocked(r, o) // records and re-files pending
			}
		case o == wire.OutcomeUnknown || o == prev:
			// nothing new
		case prev == wire.OutcomeUnknown:
			c.noteOutcomeLocked(r, o)
		default:
			c.outcomes[r] = wire.OutcomeFailing
		}
	}
	// Re-file pending evidence for runs this collector had already
	// decided before the merge.
	for r, hs := range c.pending {
		o := c.outcomes[r]
		if o == wire.OutcomeUnknown {
			continue
		}
		for _, k := range hs {
			if agg, ok := c.agg[k]; ok {
				c.fileRunLocked(agg, r, o)
			}
		}
		delete(c.pending, r)
	}
	c.stats.Batches = uint64(len(c.seen))
	return MergeStats{Batches: len(st.seen), Sequences: len(st.agg), Runs: len(st.outcomes)}, nil
}
