package fleet

import (
	"io"
	"net"
	"os"
	"time"

	"act/internal/wire"
)

// Spool files hold undeliverable batches in wire format: a full stream
// (prologue + frames) appended to across outages, replayed and removed
// once a collector takes the evidence. These helpers are shared by the
// single-collector Agent and the sharded Router — one on-disk format,
// one damage model (a crash mid-append costs only the torn frame).

// SpoolSize returns the size of the spool file at path, 0 when the
// path is empty or the file is absent.
func SpoolSize(path string) int64 {
	if path == "" {
		return 0
	}
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}

// AppendSpool appends batches to the spool file at path. A spool
// already past maxBytes is dropped and restarted first: under
// sustained outage the newest evidence is the evidence worth keeping.
// Returns how many batches were written (a prefix of batches — an
// error mid-append keeps the rest with the caller) and whether the
// spool was reset.
func AppendSpool(path string, maxBytes int64, batches []*wire.Batch) (written int, reset bool, err error) {
	if len(batches) == 0 {
		return 0, false, nil
	}
	if fi, err := os.Stat(path); err == nil && fi.Size() > maxBytes {
		os.Remove(path)
		reset = true
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, reset, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, reset, err
	}
	var wr *wire.Writer
	if fi.Size() == 0 {
		wr = wire.NewWriter(f) // fresh spool: full stream with prologue
	} else {
		wr = wire.NewRawWriter(f) // appending frames mid-stream
	}
	for _, b := range batches {
		if err := wr.WriteBatch(b); err != nil {
			return written, reset, err
		}
		written++
	}
	return written, reset, nil
}

// ReadSpool parses every intact batch in the spool file. Damage inside
// the spool is skipped frame-wise, exactly like damage on the wire, and
// counted in the returned report; a missing file is an empty spool, not
// an error. The file is left in place — callers remove it once the
// batches are safely delivered.
func ReadSpool(path string) ([]*wire.Batch, wire.StreamReport, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, wire.StreamReport{}, nil
		}
		return nil, wire.StreamReport{}, err
	}
	defer f.Close()
	rd := wire.NewReader(f, 0)
	var out []*wire.Batch
	for {
		b, err := rd.Next()
		if err != nil {
			break // EOF or a spool too damaged to continue; keep what decoded
		}
		out = append(out, b)
	}
	return out, rd.Report(), nil
}

// deadlineWriter arms a fresh write deadline before every write, so a
// peer that accepts but never reads fails the ship with a timeout
// instead of stalling the caller indefinitely — the write-side twin of
// the collector's deadlineReader.
type deadlineWriter struct {
	conn net.Conn
	d    time.Duration
}

// DeadlineWriter wraps conn so every write is bounded by d; d <= 0
// returns conn unchanged.
func DeadlineWriter(conn net.Conn, d time.Duration) io.Writer {
	if d <= 0 {
		return conn
	}
	return &deadlineWriter{conn: conn, d: d}
}

func (w *deadlineWriter) Write(p []byte) (int, error) {
	w.conn.SetWriteDeadline(time.Now().Add(w.d))
	return w.conn.Write(p)
}
