package shard

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"act/internal/core"
	"act/internal/fleet"
	"act/internal/loader"
	"act/internal/wire"
)

// RouterConfig parameterizes a Router.
type RouterConfig struct {
	// Shards maps shard name to collector address (host:port);
	// required, at least one entry. Names are the ring identity — every
	// router and the rollup must agree on them.
	Shards map[string]string

	Name string // agent identity in batches; default "agent"
	Run  uint64 // run id, unique per monitored execution; default 1

	// Replicas is the ring's virtual-node count per shard; default
	// DefaultReplicas.
	Replicas int

	// Interval is the drain cadence of the background loop started by
	// Start; default 2s. Flush drains on demand regardless.
	Interval time.Duration
	// MaxBatchEntries caps entries per batch; default 256.
	MaxBatchEntries int
	// MaxQueue bounds each shard lane's in-memory batch queue under
	// drop-oldest backpressure; default 64.
	MaxQueue int

	// SpoolDir, when set, holds one spool file per shard
	// (<dir>/<shard>.spool) for batches no reachable shard would take.
	SpoolDir string
	// SpoolMaxBytes caps each spool file; default 8 MiB.
	SpoolMaxBytes int64

	// Retry governs one delivery attempt against one shard; zero value
	// = loader defaults. Wire protocol errors are classified permanent
	// on top of the given policy. Failover to the ring successor happens
	// after this per-shard policy is exhausted.
	Retry loader.RetryConfig

	// Breaker parameterizes the per-shard circuit breakers.
	Breaker BreakerConfig

	// DialTimeout bounds one connection attempt; default 5s.
	DialTimeout time.Duration
	// WriteTimeout is the per-write deadline, matching the collector's
	// ReadTimeout; default 2 minutes.
	WriteTimeout time.Duration

	// Dial replaces the TCP dialer (tests, chaos campaigns re-pointing
	// logical shards at restarted listeners).
	Dial func(addr string) (net.Conn, error)
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.Name == "" {
		c.Name = "agent"
	}
	if c.Run == 0 {
		c.Run = 1
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.MaxBatchEntries <= 0 {
		c.MaxBatchEntries = 256
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.SpoolMaxBytes <= 0 {
		c.SpoolMaxBytes = 8 << 20
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 2 * time.Minute
	}
	if c.Dial == nil {
		timeout := c.DialTimeout
		c.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	base := c.Retry.Transient
	if base == nil {
		base = loader.TransientDefault
	}
	c.Retry.Transient = func(err error) bool {
		return base(err) && !wire.IsProtocolError(err)
	}
	return c
}

// RouterStats counts a router's activity.
type RouterStats struct {
	Drained        uint64 // entries taken from the source
	Batches        uint64 // batches formed across all lanes
	Shipped        uint64 // batches written to some shard
	Spooled        uint64 // batches written to spool files
	Replayed       uint64 // spooled batches re-shipped
	DroppedBatches uint64 // batches lost to lane backpressure
	SpoolDrops     uint64 // spool resets after exceeding the size cap
	Dials          uint64 // shard connection (re)establishments
	ShipAttempts   uint64 // delivery attempts, retries included

	// Failover accounting.
	Reroutes     uint64 // lane deliveries that landed on a ring successor
	Unrouted     uint64 // lane deliveries that found no reachable shard
	DialFailures uint64 // attempts that failed connecting
	TimeoutFails uint64 // attempts that failed on a deadline
	WriteFails   uint64 // attempts that failed mid-write

	// Spool damage observed during replay (per replay attempt).
	SpoolBadSpans     uint64
	SpoolSkippedBytes uint64
}

// lane is the per-shard delivery state: the queue of batches whose
// sequences hash to this shard, the live connection, and the breaker
// gating attempts against it.
type lane struct {
	name  string
	addr  string
	spool string // spool file path; "" when spooling is off

	// queue, conn, wr and sentMark are all accessed under the owning
	// Router's mu (a cross-struct guard the `// guarded by` annotation
	// cannot express); lanes never escape their Router.
	queue    []*wire.Batch
	conn     net.Conn
	wr       *wire.Writer
	sentMark bool // current outcome label batched at least once

	breaker *Breaker // internally locked
}

// Router is the sharded counterpart of fleet.Agent: it drains the same
// Source, but partitions entries by consistent hashing of their
// sequence hash across N collector shards, so each shard aggregates a
// disjoint slice of the sequence space and the rollup's merge is cheap.
//
// One global (agent, run, seq) counter spans all lanes, so batch dedup
// keys never collide across shards and any batch may be redelivered to
// any shard — which is exactly what failover does: when a shard is
// down (breaker open after dial/write/timeout failures), its lane's
// queue and spool are shipped to the ring successor unchanged, and
// when no shard is reachable they spool to disk for replay later.
// All methods are safe for concurrent use.
type Router struct {
	cfg  RouterConfig
	src  fleet.Source
	ring *Ring

	mu      sync.Mutex
	lanes   []*lane      // ring index order; the slice itself is immutable
	seq     uint64       // guarded by mu; global batch counter across lanes
	outcome wire.Outcome // guarded by mu
	stats   RouterStats  // guarded by mu

	started  bool // guarded by mu
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewRouter creates a router shipping src's entries across cfg.Shards.
// Passive until Start or Flush.
func NewRouter(src fleet.Source, cfg RouterConfig) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one shard")
	}
	cfg = cfg.withDefaults()
	names := make([]string, 0, len(cfg.Shards))
	for name := range cfg.Shards {
		names = append(names, name)
	}
	ring := NewRing(names, cfg.Replicas)
	r := &Router{
		cfg:  cfg,
		src:  src,
		ring: ring,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	for _, name := range ring.Shards() {
		ln := &lane{
			name:    name,
			addr:    cfg.Shards[name],
			breaker: NewBreaker(cfg.Breaker),
		}
		if cfg.SpoolDir != "" {
			ln.spool = filepath.Join(cfg.SpoolDir, name+".spool")
		}
		r.lanes = append(r.lanes, ln)
	}
	return r, nil
}

// Ring returns the router's ring (shared, immutable).
func (r *Router) Ring() *Ring { return r.ring }

// SetOutcome labels batches drained from now on. A flip re-announces
// the run to every shard (each lane's next drain emits a batch even
// when empty), so all shards learn the outcome and can re-file their
// pending evidence.
func (r *Router) SetOutcome(o wire.Outcome) {
	r.mu.Lock()
	if r.outcome != o {
		r.outcome = o
		for _, ln := range r.lanes {
			ln.sentMark = false
		}
	}
	r.mu.Unlock()
}

// Stats returns a copy of the activity counters.
func (r *Router) Stats() RouterStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// QueueDepth returns the number of batches waiting across all lanes.
func (r *Router) QueueDepth() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ln := range r.lanes {
		n += len(ln.queue)
	}
	return n
}

// SpoolBytes returns the total size of all lane spool files.
func (r *Router) SpoolBytes() int64 {
	var n int64
	for _, ln := range r.lanes {
		n += fleet.SpoolSize(ln.spool)
	}
	return n
}

// BreakerStates returns each shard's breaker position, keyed by shard
// name — the ring-state view actagent exposes.
func (r *Router) BreakerStates() map[string]BreakerState {
	out := make(map[string]BreakerState, len(r.lanes))
	for _, ln := range r.lanes {
		out[ln.name] = ln.breaker.State()
	}
	return out
}

// DropConnections closes every lane's connection; the next delivery
// redials. Chaos campaigns call it at round boundaries to model
// long-lived agents reconnecting, so a shard killed between rounds is
// discovered by a failed dial rather than a half-written frame.
func (r *Router) DropConnections() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ln := range r.lanes {
		r.dropLaneConnLocked(ln)
	}
}

// Tick drains the source into the lane queues without shipping.
func (r *Router) Tick() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.drainLocked()
}

// drainLocked pulls entries from the source, partitions them by ring
// route of each entry's sequence hash, and forms per-lane batches with
// globally unique sequence numbers.
//
//act:locked mu
func (r *Router) drainLocked() {
	entries, stats := r.src.Drain()
	r.stats.Drained += uint64(len(entries))
	perLane := make([][]core.DebugEntry, len(r.lanes))
	for _, e := range entries {
		i := r.ring.Route(e.Seq.Hash())
		perLane[i] = append(perLane[i], e)
	}
	for i, ln := range r.lanes {
		es := perLane[i]
		if len(es) == 0 && ln.sentMark {
			continue
		}
		ln.sentMark = true
		for first := true; first || len(es) > 0; first = false {
			n := len(es)
			if n > r.cfg.MaxBatchEntries {
				n = r.cfg.MaxBatchEntries
			}
			b := &wire.Batch{
				Agent:   r.cfg.Name,
				Run:     r.cfg.Run,
				Seq:     r.seq,
				Outcome: r.outcome,
				Stats:   stats,
				Entries: es[:n:n],
			}
			es = es[n:]
			r.seq++
			r.stats.Batches++
			if len(ln.queue) >= r.cfg.MaxQueue {
				ln.queue = ln.queue[1:]
				r.stats.DroppedBatches++
			}
			ln.queue = append(ln.queue, b)
		}
	}
}

// Flush drains the source and delivers every lane's queue (and spool),
// synchronously. Lanes whose primary shard is down fail over to ring
// successors; what no shard takes is spooled. The returned error is
// the first delivery failure (nil when everything landed somewhere).
func (r *Router) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.drainLocked()
	return r.shipAllLocked()
}

// Start runs the periodic drain-and-ship loop until Close.
func (r *Router) Start() {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.mu.Unlock()
	go func() {
		defer close(r.done)
		t := time.NewTicker(r.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				r.mu.Lock()
				r.drainLocked()
				r.shipAllLocked() // errors already counted; spools hold the rest
				r.mu.Unlock()
			}
		}
	}()
}

// Close stops the loop, attempts a final flush, and closes all shard
// connections. The returned error is the final flush's.
func (r *Router) Close() error {
	r.stopOnce.Do(func() { close(r.stop) })
	r.mu.Lock()
	started := r.started
	r.mu.Unlock()
	if started {
		<-r.done
	}
	err := r.Flush()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ln := range r.lanes {
		r.dropLaneConnLocked(ln)
	}
	return err
}

// shipAllLocked delivers every lane with pending work.
//
//act:locked mu
func (r *Router) shipAllLocked() error {
	var firstErr error
	for i := range r.lanes {
		if err := r.deliverLocked(i); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// deliverLocked lands lane i's queue and spool on some shard: the
// primary first, then ring successors, skipping shards whose breaker
// refuses. A delivery through a successor counts as a re-route; when
// no shard is reachable the lane spools to its own file and the first
// error is returned.
//
//act:locked mu
func (r *Router) deliverLocked(i int) error {
	ln := r.lanes[i]
	if len(ln.queue) == 0 && fleet.SpoolSize(ln.spool) == 0 {
		return nil
	}
	var firstErr error
	n := len(r.lanes)
	for off := 0; off < n; off++ {
		j := (i + off) % n
		tgt := r.lanes[j]
		if !tgt.breaker.Allow() {
			continue
		}
		err := r.shipLaneViaLocked(ln, tgt)
		if err == nil {
			tgt.breaker.Success()
			if off != 0 {
				r.stats.Reroutes++
			}
			return nil
		}
		tgt.breaker.Failure()
		r.classifyFailureLocked(err)
		if firstErr == nil {
			firstErr = err
		}
	}
	r.stats.Unrouted++
	if ln.spool != "" {
		if serr := r.spoolLaneLocked(ln); serr == nil && firstErr != nil {
			return fmt.Errorf("shard: no shard reachable for lane %s, batches spooled: %w",
				ln.name, firstErr)
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("shard: no shard admitted by breakers for lane %s", ln.name)
	}
	return firstErr
}

// shipLaneViaLocked ships src's spool and queue over tgt's connection
// under the per-shard retry policy. On a fresh dial, tgt's own spool is
// replayed first — the recovered-shard path: a shard coming back gets
// its spooled backlog before new traffic. Partial failure leaves the
// undelivered remainder with src (queue and/or spool); anything that
// did reach a collector is deduplicated there.
//
//act:locked mu
func (r *Router) shipLaneViaLocked(src, tgt *lane) error {
	return loader.Do(r.cfg.Retry, func() error {
		r.stats.ShipAttempts++
		if tgt.conn == nil {
			conn, err := r.cfg.Dial(tgt.addr)
			if err != nil {
				return err
			}
			tgt.conn = conn
			tgt.wr = wire.NewWriter(fleet.DeadlineWriter(conn, r.cfg.WriteTimeout))
			r.stats.Dials++
			if src != tgt {
				if err := r.replaySpoolLocked(tgt, tgt); err != nil {
					r.dropLaneConnLocked(tgt)
					return err
				}
			}
		}
		if err := r.replaySpoolLocked(src, tgt); err != nil {
			r.dropLaneConnLocked(tgt)
			return err
		}
		for len(src.queue) > 0 {
			if err := tgt.wr.WriteBatch(src.queue[0]); err != nil {
				r.dropLaneConnLocked(tgt)
				return err
			}
			src.queue = src.queue[1:]
			r.stats.Shipped++
		}
		return nil
	})
}

// replaySpoolLocked re-ships every batch in from's spool file over
// via's connection, then removes the file. Damage inside the spool
// costs only the damaged frames and is counted; a write failure keeps
// the file for the next attempt (redelivery is deduplicated).
//
//act:locked mu
func (r *Router) replaySpoolLocked(from, via *lane) error {
	if from.spool == "" || fleet.SpoolSize(from.spool) == 0 {
		return nil
	}
	batches, rep, err := fleet.ReadSpool(from.spool)
	r.stats.SpoolBadSpans += uint64(rep.BadSpans)
	r.stats.SpoolSkippedBytes += uint64(rep.SkippedBytes)
	if err != nil {
		return err
	}
	for _, b := range batches {
		if err := via.wr.WriteBatch(b); err != nil {
			return err
		}
		r.stats.Replayed++
	}
	return os.Remove(from.spool)
}

// spoolLaneLocked appends the lane's queued batches to its spool file.
//
//act:locked mu
func (r *Router) spoolLaneLocked(ln *lane) error {
	if len(ln.queue) == 0 {
		return nil
	}
	written, reset, err := fleet.AppendSpool(ln.spool, r.cfg.SpoolMaxBytes, ln.queue)
	if reset {
		r.stats.SpoolDrops++
	}
	ln.queue = ln.queue[written:]
	r.stats.Spooled += uint64(written)
	return err
}

// dropLaneConnLocked abandons a lane's connection after an error; the
// next attempt redials.
//
//act:locked mu
func (r *Router) dropLaneConnLocked(ln *lane) {
	if ln.conn != nil {
		ln.conn.Close()
	}
	ln.conn = nil
	ln.wr = nil
}

// classifyFailureLocked buckets a delivery failure the way an operator
// triages one: could not connect (shard process dead or unreachable),
// deadline expired (shard wedged or partitioned), or failed mid-write
// (shard died under us).
//
//act:locked mu
func (r *Router) classifyFailureLocked(err error) {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		r.stats.TimeoutFails++
		return
	}
	var oe *net.OpError
	if errors.As(err, &oe) && oe.Op == "dial" {
		r.stats.DialFailures++
		return
	}
	r.stats.WriteFails++
}
