package shard

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"act/internal/core"
	"act/internal/deps"
	"act/internal/fleet"
	"act/internal/loader"
	"act/internal/ranking"
	"act/internal/wire"
)

// --- fixtures ---------------------------------------------------------

type stubSource struct {
	mu      sync.Mutex
	pending []core.DebugEntry
	stats   core.Stats
}

func (s *stubSource) push(es ...core.DebugEntry) {
	s.mu.Lock()
	s.pending = append(s.pending, es...)
	s.stats.PredictedInvalid += uint64(len(es))
	s.mu.Unlock()
}

func (s *stubSource) Drain() ([]core.DebugEntry, core.Stats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.pending
	s.pending = nil
	return out, s.stats
}

func seqOf(ids ...uint64) deps.Sequence {
	s := make(deps.Sequence, len(ids))
	for i, id := range ids {
		s[i] = deps.Dep{S: id << 4, L: id<<4 + 1, Inter: true}
	}
	return s
}

func entryOf(seq deps.Sequence, output float64) core.DebugEntry {
	return core.DebugEntry{Seq: seq, Output: output, Mode: core.Testing}
}

// The cross-shard scenario: a bug sequence in every failing run, noise
// in failing and correct runs, one unique sequence per failing run —
// enough distinct sequences that a ring over 3 shards splits them.
var (
	bugSeq   = seqOf(1, 2, 3)
	noiseA   = seqOf(4, 5, 6)
	noiseB   = seqOf(7, 8, 9)
	uniqSeqs = []deps.Sequence{seqOf(10, 11, 12), seqOf(13, 14, 15), seqOf(16, 17, 18)}
)

func failingEntries(i int) []core.DebugEntry {
	return []core.DebugEntry{
		entryOf(bugSeq, -1.5),
		entryOf(noiseA, -0.5),
		entryOf(noiseB, -0.4),
		entryOf(uniqSeqs[i], -2.0),
	}
}

func correctEntries() []core.DebugEntry {
	return []core.DebugEntry{entryOf(noiseA, -0.5), entryOf(noiseB, -0.4)}
}

func quickRetry(attempts int) loader.RetryConfig {
	return loader.RetryConfig{Attempts: attempts, Sleep: func(time.Duration) {}}
}

// fastBreaker trips after one failure and re-probes almost immediately,
// with deterministic jitter.
func fastBreaker() BreakerConfig {
	return BreakerConfig{
		Threshold: 1,
		BaseDelay: time.Microsecond,
		MaxDelay:  time.Millisecond,
		Rand:      func() float64 { return 0.5 },
	}
}

// shardFleet is three live shard collectors on loopback listeners.
type shardFleet struct {
	names      []string
	addrs      map[string]string
	collectors map[string]*fleet.Collector
	listeners  map[string]net.Listener
}

func startShards(t *testing.T, n int) *shardFleet {
	t.Helper()
	sf := &shardFleet{
		addrs:      make(map[string]string),
		collectors: make(map[string]*fleet.Collector),
		listeners:  make(map[string]net.Listener),
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("shard%d", i)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		c := fleet.NewCollector(fleet.CollectorConfig{})
		go c.Serve(ln)
		t.Cleanup(c.Shutdown)
		sf.names = append(sf.names, name)
		sf.addrs[name] = ln.Addr().String()
		sf.collectors[name] = c
		sf.listeners[name] = ln
	}
	return sf
}

// kill closes a shard's listener and stops its accept loop — the
// crashed-process model (established connections die with it in real
// life; tests kill before the router connects). The listener is closed
// directly rather than via Shutdown, which races the Serve goroutine
// registering it.
func (sf *shardFleet) kill(name string) {
	sf.listeners[name].Close()
	sf.collectors[name].Shutdown()
}

// shipSharded runs the scenario through routers over the given shards.
func shipSharded(t *testing.T, sf *shardFleet, spoolDir string) {
	t.Helper()
	ship := func(name string, run uint64, o wire.Outcome, entries []core.DebugEntry) {
		src := &stubSource{}
		src.push(entries...)
		rt, err := NewRouter(src, RouterConfig{
			Shards:   sf.addrs,
			Name:     name,
			Run:      run,
			Retry:    quickRetry(4),
			Breaker:  fastBreaker(),
			SpoolDir: spoolDir,
		})
		if err != nil {
			t.Fatal(err)
		}
		rt.SetOutcome(o)
		if err := rt.Flush(); err != nil {
			t.Fatalf("router %s flush: %v", name, err)
		}
		if err := rt.Close(); err != nil {
			t.Fatalf("router %s close: %v", name, err)
		}
	}
	for i := 0; i < 3; i++ {
		ship([]string{"f0", "f1", "f2"}[i], uint64(101+i), wire.OutcomeFailing, failingEntries(i))
	}
	ship("c0", 201, wire.OutcomeCorrect, correctEntries())
	ship("c1", 202, wire.OutcomeCorrect, correctEntries())
}

// singleCollectorBaseline runs the identical scenario through one
// in-process collector — the never-failed reference the sharded tier
// must reproduce byte-for-byte.
func singleCollectorBaseline() *fleet.Collector {
	c := fleet.NewCollector(fleet.CollectorConfig{})
	ingest := func(name string, run uint64, o wire.Outcome, entries []core.DebugEntry) {
		c.Ingest(&wire.Batch{Agent: name, Run: run, Seq: 0, Outcome: o, Entries: entries})
	}
	for i := 0; i < 3; i++ {
		ingest([]string{"f0", "f1", "f2"}[i], uint64(101+i), wire.OutcomeFailing, failingEntries(i))
	}
	ingest("c0", 201, wire.OutcomeCorrect, correctEntries())
	ingest("c1", 202, wire.OutcomeCorrect, correctEntries())
	return c
}

func reportBytes(t *testing.T, rep *ranking.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// waitIngested blocks until the fleet's shards have drained their
// connections: total batches stop growing and match at least min.
func (sf *shardFleet) waitIngested(t *testing.T, min uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var total uint64
		for _, c := range sf.collectors {
			total += c.Stats().Batches
		}
		if total >= min {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d batches across shards", min)
}

// rollupOf merges every live shard's exported state.
func rollupOf(sf *shardFleet) *Rollup {
	ru := NewRollup(RollupConfig{Expected: sf.names})
	for _, name := range sf.names {
		ru.AddState(name, sf.collectors[name].ExportState())
	}
	return ru
}

// --- ring -------------------------------------------------------------

func TestRingRoutesEveryKeyAndBalances(t *testing.T) {
	r := NewRing([]string{"c", "a", "b", "a"}, 0)
	if got := r.Shards(); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("shards not deduplicated and sorted: %v", got)
	}
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, r.Len())
	for i := 0; i < 10000; i++ {
		h := rng.Uint64()
		s := r.Route(h)
		if s < 0 || s >= r.Len() {
			t.Fatalf("key %x routed out of range: %d", h, s)
		}
		if again := r.Route(h); again != s {
			t.Fatalf("routing not deterministic for %x", h)
		}
		counts[s]++
	}
	for i, n := range counts {
		if n < 1000 {
			t.Fatalf("shard %d badly underloaded: %d of 10000 (counts %v)", i, n, counts)
		}
	}
}

func TestRingStabilityUnderShardLoss(t *testing.T) {
	full := NewRing([]string{"a", "b", "c", "d"}, 0)
	reduced := NewRing([]string{"a", "b", "d"}, 0)
	rng := rand.New(rand.NewSource(2))
	moved := 0
	const n = 10000
	for i := 0; i < n; i++ {
		h := rng.Uint64()
		before := full.Shards()[full.Route(h)]
		after := reduced.Shards()[reduced.Route(h)]
		if before != "c" && before != after {
			moved++
		}
	}
	// Consistent hashing: keys not owned by the removed shard stay put.
	if moved != 0 {
		t.Fatalf("%d of %d keys moved between surviving shards", moved, n)
	}
	if full.Successor(3) != 0 || full.Successor(1) != 2 {
		t.Fatalf("successor chain broken: %d %d", full.Successor(3), full.Successor(1))
	}
}

// --- breaker ----------------------------------------------------------

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{
		Threshold: 2,
		BaseDelay: 100 * time.Millisecond,
		MaxDelay:  time.Second,
		Jitter:    0, // deterministic schedule
		Now:       func() time.Time { return now },
	})
	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("fresh breaker should be closed and allowing")
	}
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("one failure under threshold=2 must not open")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("threshold failures must open")
	}
	if b.Allow() {
		t.Fatal("open breaker before backoff must refuse")
	}
	now = now.Add(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("elapsed backoff must admit the half-open probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after probe admission = %v", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller during the probe must be refused")
	}
	b.Failure() // probe failed: reopen with doubled backoff
	if b.State() != BreakerOpen {
		t.Fatal("failed probe must reopen")
	}
	now = now.Add(100 * time.Millisecond)
	if b.Allow() {
		t.Fatal("reopened breaker must wait the doubled interval")
	}
	now = now.Add(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("doubled interval elapsed; probe must be admitted")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("successful probe must close and reset")
	}
}

func TestBreakerBackoffCapAndJitter(t *testing.T) {
	now := time.Unix(0, 0)
	var rolls int
	b := NewBreaker(BreakerConfig{
		Threshold: 1,
		BaseDelay: 10 * time.Millisecond,
		MaxDelay:  40 * time.Millisecond,
		Jitter:    0.5,
		Now:       func() time.Time { return now },
		Rand:      func() float64 { rolls++; return 1.0 },
	})
	for i := 0; i < 6; i++ { // push past the cap
		b.Failure()
		now = now.Add(time.Minute)
		if !b.Allow() {
			t.Fatalf("probe %d refused after a minute", i)
		}
	}
	// Final interval: capped 40ms * (1 + 0.5*1.0) = 60ms.
	b.Failure()
	if rolls == 0 {
		t.Fatal("jitter source never consulted")
	}
	now = now.Add(59 * time.Millisecond)
	if b.Allow() {
		t.Fatal("probe admitted before the jittered capped interval")
	}
	now = now.Add(2 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe refused after the jittered capped interval")
	}
}

// --- router + rollup --------------------------------------------------

// TestShardedMatchesSingleCollector: the scenario shipped through 3
// shards and merged by the rollup yields a report byte-identical to the
// single-collector baseline.
func TestShardedMatchesSingleCollector(t *testing.T) {
	sf := startShards(t, 3)
	shipSharded(t, sf, t.TempDir())
	sf.waitIngested(t, 5)

	// Evidence must actually be sharded, not funneled to one collector.
	spread := 0
	for _, c := range sf.collectors {
		if c.Sequences() > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("sequences landed on %d shard(s); ring not partitioning", spread)
	}

	ru := rollupOf(sf)
	rr := ru.Report()
	if rr.Completeness != 1 {
		t.Fatalf("all shards merged but completeness = %v", rr.Completeness)
	}
	want := reportBytes(t, singleCollectorBaseline().Report())
	if got := reportBytes(t, rr.Report); !bytes.Equal(got, want) {
		t.Fatalf("sharded report differs from single-collector baseline:\ngot  %x\nwant %x", got, want)
	}

	// The rollup's top-K fast path agrees with the full report head.
	top := ru.TopK(2)
	full := rr.Report.Ranked
	if len(top) != 2 || top[0].Entry.Seq.Hash() != full[0].Entry.Seq.Hash() {
		t.Fatalf("TopK head disagrees with report: %+v vs %+v", top, full[:2])
	}
	if top[0].Entry.Seq.Key() != bugSeq.Key() {
		t.Fatalf("bug sequence not at rank 1: %s", top[0].Entry.Seq.Key())
	}
}

// TestFailoverReroutesToSuccessor: with one shard dead before any
// traffic, its lane's batches fail over to the ring successor and the
// merged report over the survivors is byte-identical to the baseline.
func TestFailoverReroutesToSuccessor(t *testing.T) {
	sf := startShards(t, 3)
	victim := sf.names[1]
	sf.kill(victim)

	src := &stubSource{}
	for i := 0; i < 3; i++ {
		src.push(failingEntries(i)...)
	}
	rt, err := NewRouter(src, RouterConfig{
		Shards:  sf.addrs,
		Name:    "f-all",
		Run:     999,
		Retry:   quickRetry(2),
		Breaker: fastBreaker(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.SetOutcome(wire.OutcomeFailing)
	if err := rt.Flush(); err != nil {
		t.Fatalf("flush with one dead shard should fail over, got %v", err)
	}
	st := rt.Stats()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Reroutes == 0 {
		t.Fatalf("dead shard but no reroutes: %+v", st)
	}
	if st.DialFailures == 0 {
		t.Fatalf("dead shard's failures not classified as dial: %+v", st)
	}
	states := rt.BreakerStates()
	if states[victim] == BreakerClosed {
		t.Fatalf("victim's breaker still closed: %v", states)
	}
	sf.waitIngested(t, st.Shipped)

	// All evidence reached the survivors.
	ru := NewRollup(RollupConfig{Expected: sf.names})
	for _, name := range sf.names {
		if name == victim {
			ru.MarkUnreachable(name, "killed by test")
			continue
		}
		ru.AddState(name, sf.collectors[name].ExportState())
	}
	rr := ru.Report()
	if want := 2.0 / 3.0; rr.Completeness != want {
		t.Fatalf("completeness = %v, want %v", rr.Completeness, want)
	}
	base := fleet.NewCollector(fleet.CollectorConfig{})
	var entries []core.DebugEntry
	for i := 0; i < 3; i++ {
		entries = append(entries, failingEntries(i)...)
	}
	base.Ingest(&wire.Batch{Agent: "f-all", Run: 999, Outcome: wire.OutcomeFailing, Entries: entries})
	if got, want := reportBytes(t, rr.Report), reportBytes(t, base.Report()); !bytes.Equal(got, want) {
		t.Fatalf("failover lost or duplicated evidence")
	}
}

// TestAllShardsDownSpoolsThenReplays: with every shard dead the router
// spools per lane; once shards return, the spools replay — twice, to
// prove the dedup key makes replay idempotent — and the report matches
// the baseline exactly.
func TestAllShardsDownSpoolsThenReplays(t *testing.T) {
	spoolDir := t.TempDir()
	sf := startShards(t, 3)
	for _, name := range sf.names {
		sf.kill(name)
	}

	src := &stubSource{}
	src.push(failingEntries(0)...)
	rt, err := NewRouter(src, RouterConfig{
		Shards:   sf.addrs,
		Name:     "f0",
		Run:      101,
		Retry:    quickRetry(2),
		Breaker:  fastBreaker(),
		SpoolDir: spoolDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.SetOutcome(wire.OutcomeFailing)
	if err := rt.Flush(); err == nil {
		t.Fatal("flush with every shard dead must report an error")
	}
	st := rt.Stats()
	if st.Spooled == 0 || st.Unrouted == 0 {
		t.Fatalf("nothing spooled while all shards down: %+v", st)
	}
	if rt.SpoolBytes() == 0 {
		t.Fatal("spool files empty after total outage")
	}

	// Shards come back (fresh collectors on the same addresses).
	for _, name := range sf.names {
		ln, err := net.Listen("tcp", sf.addrs[name])
		if err != nil {
			t.Fatal(err)
		}
		c := fleet.NewCollector(fleet.CollectorConfig{})
		go c.Serve(ln)
		t.Cleanup(c.Shutdown)
		sf.collectors[name] = c
	}
	if err := rt.Flush(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	if err := rt.Flush(); err != nil { // idempotence probe: nothing left, nothing breaks
		t.Fatalf("second flush after recovery: %v", err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	st = rt.Stats()
	if st.Replayed == 0 {
		t.Fatalf("spool not replayed after recovery: %+v", st)
	}
	if rt.SpoolBytes() != 0 {
		t.Fatal("spool files survive successful replay")
	}
	sf.waitIngested(t, st.Replayed+st.Shipped)

	ru := rollupOf(sf)
	base := fleet.NewCollector(fleet.CollectorConfig{})
	base.Ingest(&wire.Batch{Agent: "f0", Run: 101, Outcome: wire.OutcomeFailing, Entries: failingEntries(0)})
	if got, want := reportBytes(t, ru.Report().Report), reportBytes(t, base.Report()); !bytes.Equal(got, want) {
		t.Fatal("replayed evidence differs from baseline")
	}
}

// TestMergeStateOrderAndDuplicationInvariance: merging shard states in
// any order, or twice over, exports identical collector state.
func TestMergeStateOrderAndDuplicationInvariance(t *testing.T) {
	sf := startShards(t, 3)
	shipSharded(t, sf, t.TempDir())
	sf.waitIngested(t, 5)

	var states [][]byte
	for _, name := range sf.names {
		states = append(states, sf.collectors[name].ExportState())
	}
	merge := func(order []int, repeat bool) []byte {
		ru := NewRollup(RollupConfig{})
		for _, i := range order {
			if err := ru.AddState(fmt.Sprintf("s%d", i), states[i]); err != nil {
				t.Fatal(err)
			}
			if repeat {
				ru.AddState(fmt.Sprintf("s%d", i), states[i])
			}
		}
		return ru.Collector().ExportState()
	}
	want := merge([]int{0, 1, 2}, false)
	if got := merge([]int{2, 0, 1}, false); !bytes.Equal(got, want) {
		t.Fatal("merge is order-dependent")
	}
	if got := merge([]int{1, 2, 0}, true); !bytes.Equal(got, want) {
		t.Fatal("duplicate merges inflate state")
	}
	if err := NewRollup(RollupConfig{}).AddState("bad", []byte("ACTSgarbage")); err == nil {
		t.Fatal("damaged state blob merged without error")
	}
}

// TestRollupServeIngestsPushedState: a shard pushing MsgState over TCP
// lands in the rollup's merged view; batches pushed directly ingest
// too.
func TestRollupServeIngestsPushedState(t *testing.T) {
	sf := startShards(t, 2)
	shipSharded(t, sf, t.TempDir())
	sf.waitIngested(t, 5)

	ru := NewRollup(RollupConfig{Expected: sf.names})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ru.Serve(ln)
	defer ru.Shutdown()

	for _, name := range sf.names {
		if err := PushState(ln.Addr().String(), name, sf.collectors[name].ExportState(), time.Second); err != nil {
			t.Fatalf("push %s: %v", name, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for ru.MergedShards() < len(sf.names) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if ru.MergedShards() != len(sf.names) {
		t.Fatalf("pushed states merged = %d, want %d", ru.MergedShards(), len(sf.names))
	}
	want := reportBytes(t, singleCollectorBaseline().Report())
	if got := reportBytes(t, ru.Report().Report); !bytes.Equal(got, want) {
		t.Fatal("pushed-state rollup differs from baseline")
	}
}
