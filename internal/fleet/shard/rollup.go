package shard

import (
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"act/internal/fleet"
	"act/internal/obs"
	"act/internal/ranking"
	"act/internal/wire"
)

// RollupConfig parameterizes a Rollup.
type RollupConfig struct {
	// Collector configures the merged fleet-wide view (strategy,
	// pruning thresholds, payload caps for the network path). Its
	// SnapshotPath, when set, persists the merged aggregate.
	Collector fleet.CollectorConfig
	// Expected lists the shard names that should report; completeness
	// is measured against it. Empty means "whoever reports".
	Expected []string
	// ReadTimeout bounds silence on pushed-state connections; default
	// the collector's (2 minutes).
	ReadTimeout time.Duration
}

// ShardStatus annotates one shard's contribution to a rollup report.
type ShardStatus struct {
	Name      string // shard name
	Merged    bool   // state arrived and merged cleanly
	Batches   int    // distinct batch keys the shard reported
	Sequences int    // distinct sequences it aggregated
	Runs      int    // distinct runs it saw
	Err       string // why the shard is missing, when it is
}

// RollupReport is the fleet-wide ranked report plus the per-shard
// completeness annotations that make a degraded rollup honest: with K
// of N shards missing the ranking is still produced, and the header
// says exactly whose evidence is in it.
type RollupReport struct {
	Report       *ranking.Report
	Shards       []ShardStatus
	Completeness float64 // merged shards / expected shards (1 when nothing expected)
}

// Rollup merges shard collector states into one fleet-wide aggregate
// and ranks it. States arrive either as ExportState blobs handed to
// AddState (snapshot files, chaos harness) or as MsgState frames pushed
// over the wire to Serve; batches pushed directly (an agent pointed at
// the rollup) are ingested too, so a one-shard fleet can skip the
// sharded tier entirely. All methods are safe for concurrent use.
type Rollup struct {
	cfg RollupConfig
	c   *fleet.Collector // internally locked

	mu     sync.Mutex
	merged map[string]fleet.MergeStats // guarded by mu
	failed map[string]string           // guarded by mu; shard -> reason

	lnMu sync.Mutex
	ln   net.Listener // guarded by lnMu
}

// NewRollup creates a rollup node.
func NewRollup(cfg RollupConfig) *Rollup {
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 2 * time.Minute
	}
	return &Rollup{
		cfg:    cfg,
		c:      fleet.NewCollector(cfg.Collector),
		merged: make(map[string]fleet.MergeStats),
		failed: make(map[string]string),
	}
}

// Collector exposes the merged aggregate (metrics, snapshots).
func (r *Rollup) Collector() *fleet.Collector { return r.c }

// AddState merges one shard's exported state. Re-adding the same shard
// is idempotent by construction of the merge; a damaged blob records
// the shard as failed and returns the error.
func (r *Rollup) AddState(shard string, state []byte) error {
	st, err := r.c.MergeState(state)
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		r.failed[shard] = err.Error()
		return fmt.Errorf("shard %s: %w", shard, err)
	}
	r.merged[shard] = st
	delete(r.failed, shard)
	return nil
}

// MarkUnreachable records why a shard's state is missing, for the
// completeness annotations. A later successful AddState clears it.
func (r *Rollup) MarkUnreachable(shard, reason string) {
	r.mu.Lock()
	if _, ok := r.merged[shard]; !ok {
		r.failed[shard] = reason
	}
	r.mu.Unlock()
}

// MergedShards returns the number of shards merged so far.
func (r *Rollup) MergedShards() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.merged)
}

// Completeness returns merged/expected without building a report —
// cheap enough for a metrics scrape. With no expected list it is the
// merged fraction of every shard heard of (1 when none).
func (r *Rollup) Completeness() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.cfg.Expected) > 0 {
		n := 0
		for _, name := range r.cfg.Expected {
			if _, ok := r.merged[name]; ok {
				n++
			}
		}
		return float64(n) / float64(len(r.cfg.Expected))
	}
	total := len(r.merged) + len(r.failed)
	if total == 0 {
		return 1
	}
	return float64(len(r.merged)) / float64(total)
}

// shardMergeSamples snapshots per-shard merge status for the metrics
// scrape, without building a report.
func (r *Rollup) shardMergeSamples() []obs.LabeledValue {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.cfg.Expected...)
	for name := range r.merged {
		if !contains(names, name) {
			names = append(names, name)
		}
	}
	for name := range r.failed {
		if !contains(names, name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	out := make([]obs.LabeledValue, 0, len(names))
	for _, name := range names {
		v := 0.0
		if _, ok := r.merged[name]; ok {
			v = 1
		}
		out = append(out, obs.LabeledValue{Label: name, Value: v})
	}
	return out
}

// Report builds the fleet-wide ranked report with per-shard
// completeness annotations.
func (r *Rollup) Report() *RollupReport {
	rep := r.c.Report()

	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.cfg.Expected...)
	for name := range r.merged {
		if !contains(names, name) {
			names = append(names, name)
		}
	}
	for name := range r.failed {
		if !contains(names, name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	out := &RollupReport{Report: rep, Completeness: 1}
	mergedCount := 0
	for _, name := range names {
		st := ShardStatus{Name: name}
		if ms, ok := r.merged[name]; ok {
			st.Merged = true
			st.Batches, st.Sequences, st.Runs = ms.Batches, ms.Sequences, ms.Runs
			mergedCount++
		} else if reason, ok := r.failed[name]; ok {
			st.Err = reason
		} else {
			st.Err = "no state received"
		}
		out.Shards = append(out.Shards, st)
	}
	if len(r.cfg.Expected) > 0 {
		expMerged := 0
		for _, name := range r.cfg.Expected {
			if _, ok := r.merged[name]; ok {
				expMerged++
			}
		}
		out.Completeness = float64(expMerged) / float64(len(r.cfg.Expected))
	} else if len(names) > 0 && mergedCount < len(names) {
		out.Completeness = float64(mergedCount) / float64(len(names))
	}
	return out
}

// TopK returns the head of the merged ranking via the streaming
// selector — the fast path for large fleets.
func (r *Rollup) TopK(k int) []ranking.Candidate { return r.c.TopK(k) }

// IngestStream consumes one connection's wire stream: MsgState frames
// merge shard states, MsgBatch frames ingest directly. Corruption is
// skipped frame-wise, exactly as on the shard tier.
func (r *Rollup) IngestStream(rd io.Reader) (wire.StreamReport, error) {
	wr := wire.NewReader(rd, r.cfg.Collector.MaxPayload)
	var err error
	for {
		var typ wire.MsgType
		var payload []byte
		typ, payload, err = wr.NextFrame()
		if err != nil {
			break
		}
		switch typ {
		case wire.MsgState:
			shard, state, derr := wire.DecodeStateMsg(payload)
			if derr != nil {
				continue // frame passed CRC but payload malformed; skip it
			}
			r.AddState(shard, state)
		case wire.MsgBatch:
			b, derr := wire.DecodeBatch(payload)
			if derr != nil {
				continue
			}
			r.c.Ingest(b)
		}
	}
	if err == io.EOF {
		err = nil
	}
	return wr.Report(), err
}

// Serve accepts state-push connections on l until Shutdown.
func (r *Rollup) Serve(l net.Listener) error {
	r.lnMu.Lock()
	r.ln = l
	r.lnMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			r.lnMu.Lock()
			closed := r.ln == nil
			r.lnMu.Unlock()
			if closed {
				return nil // Shutdown
			}
			return err
		}
		go func() {
			defer conn.Close()
			r.IngestStream(&timeoutReader{conn: conn, d: r.cfg.ReadTimeout})
		}()
	}
}

// Shutdown stops Serve; in-flight connections finish at their own pace.
func (r *Rollup) Shutdown() {
	r.lnMu.Lock()
	ln := r.ln
	r.ln = nil
	r.lnMu.Unlock()
	if ln != nil {
		ln.Close()
	}
}

// PushState dials a rollup node and pushes one shard's state frame —
// what a shard daemon does on snapshot or shutdown.
func PushState(addr, shard string, state []byte, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	payload, err := wire.EncodeStateMsg(nil, shard, state)
	if err != nil {
		return err
	}
	conn.SetWriteDeadline(time.Now().Add(timeout))
	return wire.NewWriter(conn).WriteFrame(wire.MsgState, payload)
}

// timeoutReader arms a fresh read deadline before every read.
type timeoutReader struct {
	conn net.Conn
	d    time.Duration
}

func (t *timeoutReader) Read(p []byte) (int, error) {
	t.conn.SetReadDeadline(time.Now().Add(t.d))
	return t.conn.Read(p)
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
