package shard

import "act/internal/obs"

// Metrics bridges: the router and rollup count activity under their own
// locks; these helpers expose the counters as scrape-time samples, so
// the routing and merge paths carry no per-event metric cost.

// RegisterMetrics exposes the router's activity on r as act_router_*
// series, including the ring topology and each shard's breaker state
// (act_router_breaker_state{shard="..."}: 0 closed, 1 open, 2
// half-open).
func (rt *Router) RegisterMetrics(r *obs.Registry) {
	RegisterRouterMetrics(r, func() *Router { return rt })
}

// RegisterRouterMetrics is the indirected form for callers whose router
// instance changes over the process lifetime (actagent builds one per
// shipped run): the getter is consulted at scrape time, and nil reads
// as all-zero.
func RegisterRouterMetrics(r *obs.Registry, get func() *Router) {
	stats := func() RouterStats {
		if rt := get(); rt != nil {
			return rt.Stats()
		}
		return RouterStats{}
	}
	r.CounterFunc("act_router_drained_total",
		"Debug Buffer entries drained from the monitored source.",
		func() uint64 { return stats().Drained })
	r.CounterFunc("act_router_batches_total",
		"Batches formed across all shard lanes.",
		func() uint64 { return stats().Batches })
	r.CounterFunc("act_router_shipped_total",
		"Batches delivered to some shard.",
		func() uint64 { return stats().Shipped })
	r.CounterFunc("act_router_spooled_total",
		"Batches written to lane spool files.",
		func() uint64 { return stats().Spooled })
	r.CounterFunc("act_router_replayed_total",
		"Spooled batches re-shipped.",
		func() uint64 { return stats().Replayed })
	r.CounterFunc("act_router_dropped_batches_total",
		"Batches lost to lane queue backpressure.",
		func() uint64 { return stats().DroppedBatches })
	r.CounterFunc("act_router_dials_total",
		"Shard connection (re)establishments.",
		func() uint64 { return stats().Dials })
	r.CounterFunc("act_router_ship_attempts_total",
		"Delivery attempts including retries.",
		func() uint64 { return stats().ShipAttempts })
	r.CounterFunc("act_router_reroutes_total",
		"Lane deliveries that failed over to a ring successor.",
		func() uint64 { return stats().Reroutes })
	r.CounterFunc("act_router_unrouted_total",
		"Lane deliveries that found no reachable shard.",
		func() uint64 { return stats().Unrouted })
	r.CounterFunc("act_router_dial_failures_total",
		"Delivery attempts that failed connecting to a shard.",
		func() uint64 { return stats().DialFailures })
	r.CounterFunc("act_router_timeout_failures_total",
		"Delivery attempts that failed on a deadline.",
		func() uint64 { return stats().TimeoutFails })
	r.CounterFunc("act_router_write_failures_total",
		"Delivery attempts that failed mid-write.",
		func() uint64 { return stats().WriteFails })
	r.CounterFunc("act_router_spool_bad_spans_total",
		"Corrupt spans skipped while replaying lane spools.",
		func() uint64 { return stats().SpoolBadSpans })
	r.CounterFunc("act_router_spool_skipped_bytes_total",
		"Bytes discarded while resynchronizing damaged lane spools.",
		func() uint64 { return stats().SpoolSkippedBytes })
	r.GaugeFunc("act_router_queue_depth",
		"Batches waiting across all lane queues.",
		func() float64 {
			if rt := get(); rt != nil {
				return float64(rt.QueueDepth())
			}
			return 0
		})
	r.GaugeFunc("act_router_spool_bytes",
		"Total size of all lane spool files.",
		func() float64 {
			if rt := get(); rt != nil {
				return float64(rt.SpoolBytes())
			}
			return 0
		})
	r.GaugeFunc("act_router_ring_shards",
		"Shards in the routing ring.",
		func() float64 {
			if rt := get(); rt != nil {
				return float64(rt.ring.Len())
			}
			return 0
		})
	r.LabeledGaugeFunc("act_router_breaker_state",
		"Per-shard circuit breaker position: 0 closed, 1 open, 2 half-open.",
		"shard",
		func() []obs.LabeledValue {
			rt := get()
			if rt == nil {
				return nil
			}
			out := make([]obs.LabeledValue, 0, len(rt.lanes))
			for _, ln := range rt.lanes {
				out = append(out, obs.LabeledValue{
					Label: ln.name,
					Value: float64(ln.breaker.State()),
				})
			}
			return out
		})
}

// RegisterMetrics exposes the rollup's merge progress on r as
// act_rollup_* series, alongside the merged collector's own
// act_collector_* series.
func (ru *Rollup) RegisterMetrics(r *obs.Registry) {
	ru.c.RegisterMetrics(r)
	r.GaugeFunc("act_rollup_shards_expected",
		"Shards expected to report state.",
		func() float64 { return float64(len(ru.cfg.Expected)) })
	r.GaugeFunc("act_rollup_shards_merged",
		"Shards whose state has merged cleanly.",
		func() float64 { return float64(ru.MergedShards()) })
	r.GaugeFunc("act_rollup_completeness",
		"Merged / expected shards (1 when nothing is expected).",
		func() float64 { return ru.Completeness() })
	r.LabeledGaugeFunc("act_rollup_shard_merged",
		"Per-shard merge status: 1 merged, 0 missing or damaged.",
		"shard",
		func() []obs.LabeledValue {
			return ru.shardMergeSamples()
		})
}
