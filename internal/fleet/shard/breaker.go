package shard

import (
	"math/rand"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
//
//act:exhaustive
type BreakerState uint8

const (
	// BreakerClosed passes traffic; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses traffic until the backoff interval elapses.
	BreakerOpen
	// BreakerHalfOpen admits exactly one probe; its outcome decides
	// between closing again and re-opening with doubled backoff.
	BreakerHalfOpen
)

// String names the state for logs and metrics labels.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig parameterizes a Breaker.
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that opens the
	// breaker; default 3.
	Threshold int
	// BaseDelay is the first open interval; default 100ms. Each
	// consecutive re-open doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff; default 30s.
	MaxDelay time.Duration
	// Jitter is the fraction of the delay randomized on top (0..1), so
	// a fleet of routers does not probe a recovering shard in lockstep;
	// default 0.2.
	Jitter float64

	// Now and Rand are injectable for deterministic tests and chaos
	// campaigns; defaults are time.Now and the global math/rand.
	Now  func() time.Time
	Rand func() float64
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 100 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 30 * time.Second
	}
	if c.Jitter < 0 || c.Jitter > 1 {
		c.Jitter = 0.2
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Rand == nil {
		c.Rand = rand.Float64
	}
	return c
}

// Breaker is a per-shard circuit breaker. The Router consults Allow
// before attempting a delivery to a shard and reports the attempt's
// outcome with Success or Failure; an unreachable shard therefore costs
// one failed dial per backoff interval instead of one per batch, and a
// recovering shard is eased back in through a single half-open probe.
// All methods are safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu      sync.Mutex
	state   BreakerState // guarded by mu
	fails   int          // guarded by mu; consecutive failures while closed
	opens   int          // guarded by mu; consecutive opens, exponent of the backoff
	until   time.Time    // guarded by mu; when open, earliest half-open probe
	probing bool         // guarded by mu; the half-open probe is in flight
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a delivery attempt may proceed. While open it
// returns false until the backoff interval elapses, then admits exactly
// one probe (half-open); concurrent callers during the probe are
// refused.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Now().Before(b.until) {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Success records a successful delivery: the breaker closes and the
// backoff resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.state = BreakerClosed
	b.fails = 0
	b.opens = 0
	b.probing = false
	b.mu.Unlock()
}

// Failure records a failed delivery. Reaching the threshold while
// closed — or failing the half-open probe — opens the breaker for the
// next backoff interval (doubled per consecutive open, capped,
// jittered).
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.openLocked()
		}
	case BreakerHalfOpen:
		b.openLocked()
	case BreakerOpen:
		// A late failure from an attempt admitted before the open;
		// the breaker is already refusing traffic.
	}
}

// openLocked transitions to open and arms the next probe time.
//
//act:locked mu
func (b *Breaker) openLocked() {
	b.state = BreakerOpen
	b.fails = 0
	b.probing = false
	d := b.cfg.BaseDelay << uint(b.opens)
	if d > b.cfg.MaxDelay || d <= 0 {
		d = b.cfg.MaxDelay
	}
	if b.cfg.Jitter > 0 {
		d += time.Duration(float64(d) * b.cfg.Jitter * b.cfg.Rand())
	}
	if b.opens < 62 {
		b.opens++
	}
	b.until = b.cfg.Now().Add(d)
}

// State returns the breaker's current position, advancing open to
// half-open eligibility lazily (an open breaker past its interval still
// reads open until the next Allow).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
