// Package shard scales the fleet tier horizontally: instead of one
// collector ingesting every agent's batches, evidence is partitioned by
// consistent hashing of each sequence's hash across N collector shards,
// and a rollup node merges the shards' exported aggregates into the one
// cross-fleet ranked report a single collector would have produced.
//
// The package is built so that shard failure never loses evidence: the
// Router detects a dead shard (dial, write or timeout failure), opens a
// per-shard circuit breaker with capped exponential backoff, re-routes
// queued and spooled batches to the ring successor, and replays a
// recovered shard's spool on reconnect — all of it idempotent because
// the wire dedup key (agent, run, seq) makes redelivery harmless and
// the collector merge is a set union. The chaos campaign in
// internal/faults kills, partitions and restarts shards mid-ingest and
// asserts the merged report is byte-identical to a never-failed
// single-collector run.
//
//act:goleak
package shard

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over named shards. Each shard owns
// Replicas points placed by hashing "name#i"; a key routes to the shard
// owning the first point at or after the key's hash, wrapping around.
// Adding or removing one shard moves only the keys on its points — the
// property that keeps re-sharding churn proportional to 1/N.
//
// The ring is immutable after construction and safe for concurrent use.
type Ring struct {
	shards []string // sorted unique shard names
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int // index into shards
}

// DefaultReplicas is the virtual-node count per shard when
// NewRing is given zero: enough to keep the partition within a few
// percent of even for small N.
const DefaultReplicas = 128

// mix64 is a 64-bit finalizer (murmur3's fmix64). FNV-1a over short,
// near-identical vnode labels ("shard0#17") leaves the high bits — the
// bits the ring's ordering lives in — poorly spread; the finalizer
// avalanche fixes the point placement without changing the key side.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// NewRing builds a ring over the given shard names (deduplicated,
// sorted) with the given number of points per shard (0 means
// DefaultReplicas). An empty name list yields an empty ring.
func NewRing(shards []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	uniq := make(map[string]struct{}, len(shards))
	var names []string
	for _, s := range shards {
		if _, dup := uniq[s]; dup {
			continue
		}
		uniq[s] = struct{}{}
		names = append(names, s)
	}
	sort.Strings(names)
	r := &Ring{shards: names, points: make([]ringPoint, 0, len(names)*replicas)}
	for i, name := range names {
		for rep := 0; rep < replicas; rep++ {
			h := fnv.New64a()
			h.Write([]byte(name))
			h.Write([]byte{'#'})
			h.Write([]byte(strconv.Itoa(rep)))
			r.points = append(r.points, ringPoint{hash: mix64(h.Sum64()), shard: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].shard < r.points[b].shard
	})
	return r
}

// Shards returns the shard names in index order (sorted). The returned
// slice is the ring's own; callers must not mutate it.
func (r *Ring) Shards() []string { return r.shards }

// Len returns the number of shards.
func (r *Ring) Len() int { return len(r.shards) }

// Route returns the index of the shard owning key hash h, or -1 for an
// empty ring.
func (r *Ring) Route(h uint64) int {
	if len(r.points) == 0 {
		return -1
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return r.points[i].shard
}

// Successor returns the failover target after shard i: the next shard
// in index order, wrapping. With one shard it returns i itself. The
// Router walks this chain when a delivery target is down, so every
// shard has one deterministic place its traffic fails over to.
func (r *Ring) Successor(i int) int {
	if len(r.shards) == 0 {
		return -1
	}
	return (i + 1) % len(r.shards)
}
