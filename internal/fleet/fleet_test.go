package fleet

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"act/internal/core"
	"act/internal/deps"
	"act/internal/loader"
	"act/internal/ranking"
	"act/internal/wire"
)

// --- fixtures ---------------------------------------------------------

// stubSource is a Source fed by tests.
type stubSource struct {
	mu      sync.Mutex
	pending []core.DebugEntry
	stats   core.Stats
}

func (s *stubSource) push(es ...core.DebugEntry) {
	s.mu.Lock()
	s.pending = append(s.pending, es...)
	s.stats.PredictedInvalid += uint64(len(es))
	s.mu.Unlock()
}

func (s *stubSource) Drain() ([]core.DebugEntry, core.Stats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.pending
	s.pending = nil
	return out, s.stats
}

// seqOf builds a distinct sequence from small ids.
func seqOf(ids ...uint64) deps.Sequence {
	s := make(deps.Sequence, len(ids))
	for i, id := range ids {
		s[i] = deps.Dep{S: id << 4, L: id<<4 + 1, Inter: true}
	}
	return s
}

func entryOf(seq deps.Sequence, output float64) core.DebugEntry {
	return core.DebugEntry{Seq: seq, Output: output, Mode: core.Testing}
}

// The fleet scenario: a bug sequence logged by every failing run, two
// noise sequences logged by failing AND correct runs (so cross-run
// pruning removes them), and one unique sequence per failing run. The
// bug's output is deliberately *less* negative than the uniques', so
// only the cross-run weighting — three failing runs versus one — puts
// it at rank 1.
var (
	bugSeq   = seqOf(1, 2, 3)
	noiseA   = seqOf(4, 5, 6)
	noiseB   = seqOf(7, 8, 9)
	uniqSeqs = []deps.Sequence{seqOf(10, 11, 12), seqOf(13, 14, 15), seqOf(16, 17, 18)}
)

func failingEntries(i int) []core.DebugEntry {
	return []core.DebugEntry{
		entryOf(bugSeq, -1.5),
		entryOf(noiseA, -0.5),
		entryOf(noiseB, -0.4),
		entryOf(uniqSeqs[i], -2.0),
	}
}

func correctEntries() []core.DebugEntry {
	return []core.DebugEntry{entryOf(noiseA, -0.5), entryOf(noiseB, -0.4)}
}

func rankedKeys(rep *ranking.Report) []string {
	out := make([]string, len(rep.Ranked))
	for i, c := range rep.Ranked {
		out[i] = c.Entry.Seq.Key()
	}
	return out
}

func sameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// startCollector serves a collector on a loopback listener.
func startCollector(t *testing.T, cfg CollectorConfig) (*Collector, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(cfg)
	go c.Serve(ln)
	t.Cleanup(c.Shutdown)
	return c, ln.Addr().String()
}

// quickRetry keeps tests fast: no real sleeping between attempts.
func quickRetry(attempts int) loader.RetryConfig {
	return loader.RetryConfig{Attempts: attempts, Sleep: func(time.Duration) {}}
}

// runFleet ships the scenario through a loopback collector, wrapping
// each agent's dialer with mkDial (nil = stock TCP), and returns the
// collector once all five runs have been ingested.
func runFleet(t *testing.T, mkDial func(agent string) func(string) (net.Conn, error)) *Collector {
	t.Helper()
	c, addr := startCollector(t, CollectorConfig{})
	ship := func(name string, run uint64, o wire.Outcome, entries []core.DebugEntry) {
		src := &stubSource{}
		src.push(entries...)
		cfg := AgentConfig{Addr: addr, Name: name, Run: run, Retry: quickRetry(8)}
		if mkDial != nil {
			cfg.Dial = mkDial(name)
		}
		ag, err := NewAgent(src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ag.SetOutcome(o)
		if err := ag.Flush(); err != nil {
			t.Fatalf("agent %s flush: %v", name, err)
		}
		if err := ag.Close(); err != nil {
			t.Fatalf("agent %s close: %v", name, err)
		}
	}
	for i := 0; i < 3; i++ {
		ship([]string{"f0", "f1", "f2"}[i], uint64(101+i), wire.OutcomeFailing, failingEntries(i))
	}
	ship("c0", 201, wire.OutcomeCorrect, correctEntries())
	ship("c1", 202, wire.OutcomeCorrect, correctEntries())
	waitFor(t, "5 batches ingested", func() bool { return c.Stats().Batches == 5 })
	return c
}

// --- the acceptance-criterion tests -----------------------------------

// TestFleetLoopbackCrossRunRank1: three agents replaying failing runs
// and two replaying correct runs ship to one in-process collector over
// real TCP; the cross-run ranked report places the bug sequence at
// rank 1 even though a single-run ranking would not.
func TestFleetLoopbackCrossRunRank1(t *testing.T) {
	c := runFleet(t, nil)
	rep := c.Report()

	if got := rankedKeys(rep); len(got) == 0 || got[0] != bugSeq.Key() {
		t.Fatalf("bug sequence not at rank 1: %v", got)
	}
	if rep.Ranked[0].Runs != 3 {
		t.Fatalf("bug sequence runs = %d, want 3", rep.Ranked[0].Runs)
	}
	if rep.Pruned < 2 {
		t.Fatalf("noise sequences not pruned by cross-run Correct Set: pruned=%d", rep.Pruned)
	}
	for _, k := range rankedKeys(rep) {
		if k == noiseA.Key() || k == noiseB.Key() {
			t.Fatalf("noise sequence survived pruning")
		}
	}
	// Without the cross-run weighting the uniques (output -2.0) would
	// outrank the bug (-1.5) — make sure the test means something.
	single := *rep
	single.Ranked = append([]ranking.Candidate(nil), rep.Ranked...)
	single.Resort(ranking.MostMatched)
	if single.Ranked[0].Entry.Seq.Key() == bugSeq.Key() {
		t.Fatalf("scenario too easy: bug ranks first even without run weighting")
	}
}

// faultConn injects one fault per connection, scripted by dial order:
// connection 0 delivers a corrupted frame then reports a write error;
// connection 1 disconnects mid-batch; connection 2 delivers cleanly but
// claims failure (so the agent redelivers a duplicate); later
// connections behave.
type faultConn struct {
	net.Conn
	mode int
}

func (f *faultConn) Write(p []byte) (int, error) {
	switch f.mode {
	case 0:
		q := append([]byte(nil), p...)
		q[3*len(q)/4] ^= 0x5A // flip a bit inside the frame body
		f.Conn.Write(q)
		return 0, errors.New("injected: error after corrupt delivery")
	case 1:
		f.Conn.Write(p[:len(p)/2])
		f.Conn.Close()
		return len(p) / 2, errors.New("injected: disconnect mid-batch")
	case 2:
		f.Conn.Write(p)
		return 0, errors.New("injected: ack lost")
	default:
		return f.Conn.Write(p)
	}
}

// TestFleetSurvivesFaultsRankingUnchanged: the fleet pipeline absorbs a
// corrupted frame, a mid-batch disconnect, and a duplicate delivery,
// and the ranked report comes out identical to the fault-free run.
func TestFleetSurvivesFaultsRankingUnchanged(t *testing.T) {
	baseline := rankedKeys(runFleet(t, nil).Report())

	var dials int32
	mkDial := func(agent string) func(string) (net.Conn, error) {
		if agent != "f0" {
			return nil // stock dialer for the other agents
		}
		return func(addr string) (net.Conn, error) {
			conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
			if err != nil {
				return nil, err
			}
			mode := int(atomic.AddInt32(&dials, 1)) - 1
			return &faultConn{Conn: conn, mode: mode}, nil
		}
	}
	c := runFleet(t, mkDial)
	waitFor(t, "duplicate observed", func() bool { return c.Stats().DupBatches >= 1 })

	st := c.Stats()
	if st.BadSpans == 0 {
		t.Fatalf("corrupted frame not observed: %+v", st)
	}
	if got := rankedKeys(c.Report()); !sameKeys(got, baseline) {
		t.Fatalf("faults changed the ranking:\nbaseline %v\nfaulty   %v", baseline, got)
	}
}

// --- agent behaviour ---------------------------------------------------

func TestFleetSpoolAndReplay(t *testing.T) {
	spool := filepath.Join(t.TempDir(), "spool.actw")
	var up atomic.Bool
	var realAddr atomic.Value // string, set once the collector exists

	src := &stubSource{}
	ag, err := NewAgent(src, AgentConfig{
		Addr:      "collector:0", // resolved through the test dialer
		Name:      "spooler",
		Run:       7,
		SpoolPath: spool,
		Retry:     quickRetry(2),
		Dial: func(string) (net.Conn, error) {
			if !up.Load() {
				return nil, errors.New("injected: collector down")
			}
			return net.DialTimeout("tcp", realAddr.Load().(string), 5*time.Second)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ag.SetOutcome(wire.OutcomeFailing)

	src.push(failingEntries(0)...)
	if err := ag.Flush(); err == nil {
		t.Fatal("flush succeeded with collector down")
	}
	src.push(entryOf(seqOf(20, 21, 22), -0.9))
	if err := ag.Flush(); err == nil {
		t.Fatal("second flush succeeded with collector down")
	}
	if st := ag.Stats(); st.Spooled != 2 || st.Shipped != 0 {
		t.Fatalf("stats after outage: %+v", st)
	}
	if fi, err := os.Stat(spool); err != nil || fi.Size() == 0 {
		t.Fatalf("spool file missing or empty: %v", err)
	}

	c, addr := startCollector(t, CollectorConfig{})
	realAddr.Store(addr)
	up.Store(true)
	if err := ag.Flush(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	if err := ag.Close(); err != nil {
		t.Fatal(err)
	}
	if st := ag.Stats(); st.Replayed != 2 {
		t.Fatalf("replayed = %d, want 2: %+v", st.Replayed, st)
	}
	if _, err := os.Stat(spool); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("spool not removed after replay: %v", err)
	}
	waitFor(t, "spooled batches ingested", func() bool { return c.Stats().Batches == 2 })
	rep := c.Report()
	if rep.RankOf(func(s deps.Sequence) bool { return s.Key() == bugSeq.Key() }) == 0 {
		t.Fatal("replayed evidence missing from report")
	}
}

// ackLostConn forwards every write and then reports failure, so the
// agent believes nothing was delivered and replays the whole spool on
// the next connection.
type ackLostConn struct{ net.Conn }

func (c *ackLostConn) Write(p []byte) (int, error) {
	c.Conn.Write(p)
	return 0, errors.New("injected: ack lost mid-replay")
}

// TestFleetSpoolTailCorruptionMidReplay: two batches land in the spool
// during an outage and the file's tail frame is damaged on disk. The
// first replay connection delivers the surviving batch but dies before
// acknowledging, forcing a second replay of the same spool. The
// collector must end up with exactly one copy of the surviving batch
// (no double-counted sequences), and the loss of the tail batch must
// surface through the corruption counters rather than vanish silently.
func TestFleetSpoolTailCorruptionMidReplay(t *testing.T) {
	spool := filepath.Join(t.TempDir(), "spool.actw")
	var up atomic.Bool
	var realAddr atomic.Value // string
	var replayConns int32

	src := &stubSource{}
	ag, err := NewAgent(src, AgentConfig{
		Addr:      "collector:0",
		Name:      "tail",
		Run:       7,
		SpoolPath: spool,
		Retry:     quickRetry(3),
		Dial: func(string) (net.Conn, error) {
			if !up.Load() {
				return nil, errors.New("injected: collector down")
			}
			conn, err := net.DialTimeout("tcp", realAddr.Load().(string), 5*time.Second)
			if err != nil {
				return nil, err
			}
			if atomic.AddInt32(&replayConns, 1) == 1 {
				return &ackLostConn{Conn: conn}, nil
			}
			return conn, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ag.SetOutcome(wire.OutcomeFailing)

	// Outage: batch A (the scenario entries) and batch B (one extra
	// sequence) both land in the spool, B last.
	src.push(failingEntries(0)...)
	if err := ag.Flush(); err == nil {
		t.Fatal("flush succeeded with collector down")
	}
	src.push(entryOf(seqOf(20, 21, 22), -0.9))
	if err := ag.Flush(); err == nil {
		t.Fatal("second flush succeeded with collector down")
	}
	if st := ag.Stats(); st.Spooled != 2 {
		t.Fatalf("spooled = %d, want 2", st.Spooled)
	}

	// Damage the spool's tail frame — B's bytes — as a crash mid-append
	// or a bad sector would.
	data, err := os.ReadFile(spool)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40
	if err := os.WriteFile(spool, data, 0o644); err != nil {
		t.Fatal(err)
	}

	c, addr := startCollector(t, CollectorConfig{})
	realAddr.Store(addr)
	up.Store(true)
	if err := ag.Flush(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	if err := ag.Close(); err != nil {
		t.Fatal(err)
	}

	st := ag.Stats()
	if st.SpoolBadSpans == 0 || st.SpoolSkippedBytes == 0 {
		t.Fatalf("tail corruption not surfaced: %+v", st)
	}
	if _, err := os.Stat(spool); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("spool not removed after replay: %v", err)
	}
	if atomic.LoadInt32(&replayConns) < 2 {
		t.Fatalf("replay was not interrupted: %d connection(s)", replayConns)
	}

	// The surviving batch was delivered on both replay attempts; dedup
	// must keep exactly one copy.
	waitFor(t, "redelivery observed", func() bool { return c.Stats().DupBatches >= 1 })
	cst := c.Stats()
	if cst.Batches != 1 {
		t.Fatalf("collector batches = %d, want 1 (dups %d)", cst.Batches, cst.DupBatches)
	}
	rep := c.Report()
	if rep.RankOf(func(s deps.Sequence) bool { return s.Key() == bugSeq.Key() }) == 0 {
		t.Fatal("surviving batch missing from report")
	}
	for _, cand := range rep.Ranked {
		if cand.Runs != 1 {
			t.Fatalf("double-counted sequence %s: runs = %d", cand.Entry.Seq.Key(), cand.Runs)
		}
		if cand.Entry.Seq.Key() == seqOf(20, 21, 22).Key() {
			t.Fatal("corrupt tail batch reached the collector")
		}
	}
}

func TestFleetAgentBackpressure(t *testing.T) {
	src := &stubSource{}
	ag, err := NewAgent(src, AgentConfig{
		Addr:            "collector:0",
		MaxQueue:        4,
		MaxBatchEntries: 2,
		Retry:           quickRetry(1),
		Dial:            func(string) (net.Conn, error) { return nil, errors.New("injected: down") },
	})
	if err != nil {
		t.Fatal(err)
	}
	// One tick, five entries, cap two per batch: three batches formed.
	src.push(failingEntries(0)...)
	src.push(entryOf(seqOf(30, 31, 32), -0.1))
	ag.Tick()
	if st := ag.Stats(); st.Batches != 3 {
		t.Fatalf("batches = %d, want 3", st.Batches)
	}
	// Keep draining with the collector down: the queue stays at its
	// bound and the oldest batches are the ones sacrificed.
	for i := 0; i < 8; i++ {
		src.push(entryOf(seqOf(40+uint64(i), 41, 42), -0.2))
		if err := ag.Flush(); err == nil {
			t.Fatal("flush succeeded with collector down and no spool")
		}
	}
	st := ag.Stats()
	if st.Batches != 11 {
		t.Fatalf("batches = %d, want 11", st.Batches)
	}
	if want := st.Batches - 4; st.DroppedBatches != want {
		t.Fatalf("dropped = %d, want %d (queue bound 4)", st.DroppedBatches, want)
	}
	ag.mu.Lock()
	qlen := len(ag.queue)
	ag.mu.Unlock()
	if qlen != 4 {
		t.Fatalf("queue length = %d, want 4", qlen)
	}
}

func TestFleetAgentPeriodicLoop(t *testing.T) {
	c, addr := startCollector(t, CollectorConfig{})
	src := &stubSource{}
	ag, err := NewAgent(src, AgentConfig{Addr: addr, Interval: 5 * time.Millisecond, Run: 9})
	if err != nil {
		t.Fatal(err)
	}
	ag.SetOutcome(wire.OutcomeFailing)
	src.push(failingEntries(1)...)
	ag.Start()
	waitFor(t, "loop shipped a batch", func() bool { return c.Stats().Batches >= 1 })
	if err := ag.Close(); err != nil {
		t.Fatal(err)
	}
	if st := ag.Stats(); st.Shipped == 0 {
		t.Fatalf("nothing shipped: %+v", st)
	}
}

// --- collector behaviour ----------------------------------------------

func mkBatch(agent string, run, seq uint64, o wire.Outcome, entries ...core.DebugEntry) *wire.Batch {
	return &wire.Batch{Agent: agent, Run: run, Seq: seq, Outcome: o, Entries: entries}
}

func TestFleetCollectorDedup(t *testing.T) {
	c := NewCollector(CollectorConfig{})
	b := mkBatch("a", 1, 0, wire.OutcomeFailing, failingEntries(0)...)
	c.Ingest(b)
	c.Ingest(b)
	st := c.Stats()
	if st.Batches != 1 || st.DupBatches != 1 {
		t.Fatalf("stats = %+v", st)
	}
	rep := c.Report()
	if len(rep.Ranked) == 0 || rep.Ranked[0].Runs != 1 {
		t.Fatalf("duplicate inflated run count: %+v", rep.Ranked)
	}
}

func TestFleetCollectorOutcomeFlip(t *testing.T) {
	c := NewCollector(CollectorConfig{})
	c.Ingest(mkBatch("a", 1, 0, wire.OutcomeUnknown, failingEntries(0)...))
	if rep := c.Report(); len(rep.Ranked) != 0 {
		t.Fatalf("outcome-unknown evidence ranked prematurely: %+v", rep.Ranked)
	}
	// The monitored program then crashes: an empty batch flips the run
	// to failing and the pending evidence is re-filed retroactively.
	c.Ingest(mkBatch("a", 1, 1, wire.OutcomeFailing))
	rep := c.Report()
	if rep.RankOf(func(s deps.Sequence) bool { return s.Key() == bugSeq.Key() }) == 0 {
		t.Fatal("pending evidence not reclassified after outcome flip")
	}
	if rep.Ranked[0].Runs != 1 {
		t.Fatalf("runs = %d, want 1", rep.Ranked[0].Runs)
	}
}

func TestFleetCollectorSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "actd.snapshot")
	a := NewCollector(CollectorConfig{SnapshotPath: path})
	for i := 0; i < 3; i++ {
		a.Ingest(mkBatch("f", uint64(101+i), 0, wire.OutcomeFailing, failingEntries(i)...))
	}
	a.Ingest(mkBatch("c", 201, 0, wire.OutcomeCorrect, correctEntries()...))
	a.Ingest(mkBatch("c", 202, 0, wire.OutcomeCorrect, correctEntries()...))
	want := rankedKeys(a.Report())
	if err := a.Snapshot(""); err != nil {
		t.Fatal(err)
	}

	b := NewCollector(CollectorConfig{SnapshotPath: path})
	if got := rankedKeys(b.Report()); !sameKeys(got, want) {
		t.Fatalf("snapshot round trip changed ranking:\nwant %v\ngot  %v", want, got)
	}
	// Dedup state survives too: redelivery after a restart is dropped.
	b.Ingest(mkBatch("f", 101, 0, wire.OutcomeFailing, failingEntries(0)...))
	if st := b.Stats(); st.DupBatches != 1 {
		t.Fatalf("redelivery after restart not deduped: %+v", st)
	}

	// A damaged snapshot is ignored, not fatal.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	d := NewCollector(CollectorConfig{SnapshotPath: path})
	if rep := d.Report(); len(rep.Ranked) != 0 {
		t.Fatalf("damaged snapshot loaded: %+v", rep.Ranked)
	}
}
