// Package sim assembles the simulated multicore of Table III: one timing
// core per thread, the shared MESI memory hierarchy, and (optionally)
// a per-core ACT Module with its pipelined neural hardware. Its product
// is cycle counts — the execution-overhead and sensitivity experiments
// compare runs with ACT enabled against the baseline machine.
package sim

import (
	"fmt"

	"act/internal/core"
	"act/internal/cpu"
	"act/internal/deps"
	"act/internal/mem"
	"act/internal/nnhw"
	"act/internal/program"
	"act/internal/vm"
)

// Config assembles a machine.
type Config struct {
	CPU  cpu.Config
	Mem  mem.Config
	NNHW nnhw.Config

	// ACT enables the per-core modules; Module configures them and
	// Binary supplies trained weights (nil: modules start untrained in
	// online-training mode).
	ACT    bool
	Module core.Config
	Binary *core.WeightBinary

	// FilterStack skips loads addressed through stack registers.
	FilterStack bool
	// MigrateEvery rotates threads across cores every this many cycles
	// (0 disables), exercising Section IV-D: the OS saves and restores
	// the weight registers (a ldwt/stwt loop per weight) and the NN
	// pipeline flushes its in-flight inputs.
	MigrateEvery int64
	// MaxCycles bounds the run; default 200 million.
	MaxCycles int64
}

// Result reports one simulated execution.
type Result struct {
	Cycles       int64
	Instructions uint64
	Cores        []cpu.Stats
	Mem          mem.Stats
	Module       core.Stats
	Pipe         nnhw.PipeStats
	Migrations   int
	TimedOut     bool
	Failed       bool
	FailReason   string
}

// IPC returns retired instructions per cycle across the machine.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// hook adapts one core's ACT Module + NN pipeline to the cpu.ACTHook
// interface.
type hook struct {
	module      *core.Module
	pipe        *nnhw.Pipeline
	filterStack bool
	tid         uint16
}

func (h *hook) OnLoadComplete(ev vm.Event, r mem.Result) bool {
	if h.filterStack && ev.Stack {
		return false
	}
	if !r.HasWriter {
		return false
	}
	d := deps.Dep{S: r.WriterPC, L: ev.PC, Inter: r.WriterTid != int(h.tid)}
	h.module.OnDep(d)
	h.pipe.SetTraining(h.module.Mode() == core.Training)
	return true
}

func (h *hook) TryAccept() bool { return h.pipe.Offer() }
func (h *hook) Tick()           { h.pipe.Tick() }

// Run simulates the program to completion and returns the cycle count
// and statistics.
func Run(p *program.Program, cfg Config) (*Result, error) {
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 200_000_000
	}
	nThreads := p.NumThreads()
	if cfg.Mem.Cores == 0 {
		cfg.Mem.Cores = nThreads
	}
	if cfg.Mem.Cores < nThreads {
		return nil, fmt.Errorf("sim: %d threads need %d cores, have %d", nThreads, nThreads, cfg.Mem.Cores)
	}

	mach := vm.New(p)
	hier := mem.New(cfg.Mem)
	res := &Result{}

	var hooks []*hook
	cores := make([]*cpu.Core, nThreads)
	for t := 0; t < nThreads; t++ {
		var hk cpu.ACTHook
		if cfg.ACT {
			var module *core.Module
			if cfg.Binary != nil {
				tracker := core.NewTracker(cfg.Binary, core.TrackerConfig{Module: cfg.Module})
				module = tracker.Module(t)
			} else {
				mc := cfg.Module
				binary := core.NewWeightBinary(deps.InputLen(depsEncoder(mc), moduleN(mc)), 10)
				tracker := core.NewTracker(binary, core.TrackerConfig{Module: mc, Seed: int64(t) + 1})
				module = tracker.Module(t)
			}
			h := &hook{
				module:      module,
				pipe:        nnhw.NewPipeline(cfg.NNHW),
				filterStack: cfg.FilterStack,
				tid:         uint16(t),
			}
			h.pipe.SetTraining(module.Mode() == core.Training)
			hooks = append(hooks, h)
			hk = h
		}
		cores[t] = cpu.New(t, cfg.CPU, mach, t, hier, hk)
	}

	var cycles int64
	for cycles = 0; cycles < cfg.MaxCycles; cycles++ {
		if cfg.MigrateEvery > 0 && cycles > 0 && cycles%cfg.MigrateEvery == 0 && nThreads > 1 {
			hs := hooks
			if len(hs) != len(cores) {
				hs = nil
			}
			migrate(cores, hs)
			res.Migrations++
		}
		done := true
		for _, c := range cores {
			c.Cycle()
			if !c.Done() {
				done = false
			}
		}
		if failed, _, _ := mach.Failed(); failed {
			break
		}
		if mach.Deadlocked() {
			break
		}
		if done {
			break
		}
	}

	res.Cycles = cycles
	res.Mem = hier.Stats()
	for _, c := range cores {
		st := c.Stats()
		res.Cores = append(res.Cores, st)
		res.Instructions += st.Instructions
	}
	for _, h := range hooks {
		ms := h.module.Stats()
		res.Module.Deps += ms.Deps
		res.Module.Sequences += ms.Sequences
		res.Module.PredictedInvalid += ms.PredictedInvalid
		res.Module.Updates += ms.Updates
		res.Module.ModeSwitches += ms.ModeSwitches
		res.Module.TrainingDeps += ms.TrainingDeps
		ps := h.pipe.Stats
		res.Pipe.Accepted += ps.Accepted
		res.Pipe.Rejected += ps.Rejected
		res.Pipe.Completed += ps.Completed
		res.Pipe.Cycles += ps.Cycles
	}
	res.TimedOut = cycles >= cfg.MaxCycles
	res.Failed, res.FailReason, _ = mach.Failed()
	return res, nil
}

// migrate rotates the thread-to-core assignment by one: the OS drains
// each core, saves the departing thread's weight registers, restores
// them on the destination core, and flushes the NN pipelines. The cost
// is charged as a per-core stall (one cycle per ldwt plus one per stwt,
// plus a fixed switch overhead).
func migrate(cores []*cpu.Core, hooks []*hook) {
	n := len(cores)
	const switchOverhead = 50 // OS entry/exit, TLB shootdown stand-in
	// Save each thread's weights from the core it is leaving.
	saved := make(map[int][]float64, n)
	tids := make([]int, n)
	for i, c := range cores {
		tids[i] = c.Thread()
		if hooks != nil {
			saved[c.Thread()] = hooks[i].module.SaveWeights()
		}
	}
	for i, c := range cores {
		newTid := tids[(i+1)%n]
		c.Quiesce()
		c.SetThread(newTid)
		stall := int64(switchOverhead)
		if hooks != nil {
			h := hooks[i]
			h.pipe.Flush()
			if w := saved[newTid]; w != nil {
				if err := h.module.LoadWeights(w); err == nil {
					stall += 2 * int64(len(w)) // ldwt out + stwt in
				}
			}
			h.tid = uint16(newTid)
		}
		c.AddStall(stall)
	}
}

// moduleN returns the module's effective sequence length.
func moduleN(mc core.Config) int {
	if mc.N == 0 {
		return 3
	}
	return mc.N
}

// depsEncoder returns the module's effective encoder.
func depsEncoder(mc core.Config) deps.Encoder {
	if mc.Encoder == nil {
		return deps.EncodeDefault
	}
	return mc.Encoder
}

// Overhead runs the program with and without ACT and returns the
// fractional slowdown ((cyclesACT − cyclesBase) / cyclesBase) along with
// both results.
func Overhead(p *program.Program, cfg Config) (float64, *Result, *Result, error) {
	base := cfg
	base.ACT = false
	rb, err := Run(p, base)
	if err != nil {
		return 0, nil, nil, err
	}
	withACT := cfg
	withACT.ACT = true
	ra, err := Run(p, withACT)
	if err != nil {
		return 0, nil, nil, err
	}
	if rb.Cycles == 0 {
		return 0, rb, ra, fmt.Errorf("sim: baseline ran zero cycles")
	}
	return float64(ra.Cycles-rb.Cycles) / float64(rb.Cycles), rb, ra, nil
}
