package sim

import (
	"testing"

	"act/internal/core"
	"act/internal/cpu"
	"act/internal/mem"
	"act/internal/nnhw"
	"act/internal/workloads"
)

func smallMem() mem.Config {
	return mem.Config{LineSize: 64, L1Size: 4 << 10, L1Ways: 2, L2Size: 32 << 10, L2Ways: 4}
}

func TestBaselineRunsKernel(t *testing.T) {
	w, err := workloads.KernelByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	p := w.Build(1)
	res, err := Run(p, Config{Mem: smallMem()})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut || res.Failed {
		t.Fatalf("result: %+v", res)
	}
	if res.Instructions == 0 || res.Cycles == 0 {
		t.Fatal("no work simulated")
	}
	if ipc := res.IPC(); ipc <= 0 || ipc > 3 {
		t.Errorf("IPC %v outside (0, retire width]", ipc)
	}
}

func TestACTRunProducesModuleActivity(t *testing.T) {
	w, err := workloads.KernelByName("lu")
	if err != nil {
		t.Fatal(err)
	}
	p := w.Build(1)
	res, err := Run(p, Config{Mem: smallMem(), ACT: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("timed out")
	}
	if res.Module.Deps == 0 {
		t.Fatal("ACT enabled but no dependences observed")
	}
	if res.Pipe.Accepted == 0 {
		t.Fatal("no NN pipeline activity")
	}
	if res.Pipe.Accepted != res.Pipe.Completed {
		// Pipeline may hold a few in-flight entries at program end;
		// allow a small residue bounded by FIFO+stages.
		if res.Pipe.Accepted-res.Pipe.Completed > 32 {
			t.Fatalf("pipeline lost inputs: %+v", res.Pipe)
		}
	}
}

func trainedBinary(threads int) *core.WeightBinary {
	return core.AlwaysValidBinary(6, 10, threads)
}

func TestOverheadTrainedDeployment(t *testing.T) {
	// A converged deployment (testing mode) should cost single-digit
	// percent on a typical kernel at the default design point.
	w, err := workloads.KernelByName("lu")
	if err != nil {
		t.Fatal(err)
	}
	p := w.Build(1)
	ov, rb, ra, err := Overhead(p, Config{Mem: smallMem(), Binary: trainedBinary(p.NumThreads())})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("lu overhead: %.2f%% (base %d, act %d cycles; %d NN stalls)",
		100*ov, rb.Cycles, ra.Cycles, totalNNStalls(ra))
	if ov < 0 {
		t.Errorf("ACT made the program faster? overhead %v", ov)
	}
	if ov > 0.15 {
		t.Errorf("overhead %.1f%% too high for a trained deployment", 100*ov)
	}
}

func TestOverheadUntrainedIsHigher(t *testing.T) {
	// An untrained deployment runs in online-training mode (interval
	// 4T), so it must cost at least as much as the trained one.
	w, err := workloads.KernelByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	p := w.Build(1)
	trained, _, _, err := Overhead(p, Config{Mem: smallMem(), Binary: trainedBinary(p.NumThreads())})
	if err != nil {
		t.Fatal(err)
	}
	untrained, _, _, err := Overhead(p, Config{Mem: smallMem()})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fft overhead: trained %.1f%%, untrained %.1f%%", 100*trained, 100*untrained)
	if untrained < trained {
		t.Errorf("untrained (%.3f) cheaper than trained (%.3f)", untrained, trained)
	}
}

func TestWorstCaseOverheadBounded(t *testing.T) {
	// mcf's pointer chase is the dep-densest kernel: the worst case at
	// the default design point, still bounded well below the untrained
	// disaster zone.
	w, _ := workloads.KernelByName("mcf")
	p := w.Build(1)
	ov, _, _, err := Overhead(p, Config{Mem: smallMem(), Binary: trainedBinary(p.NumThreads())})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mcf worst-case overhead: %.1f%%", 100*ov)
	if ov > 1.5 {
		t.Errorf("worst case %.1f%% out of band", 100*ov)
	}
}

func TestOverheadDropsWithMoreMulAddUnits(t *testing.T) {
	// Fewer cycles per neuron -> faster NN interval -> fewer retire
	// stalls. The sensitivity experiment's expected shape.
	w, err := workloads.KernelByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	p := w.Build(1)
	slow, _, ra1, err := Overhead(p, Config{Mem: smallMem(), NNHW: nnhw.Config{MulAddUnits: 1, FIFODepth: 4}})
	if err != nil {
		t.Fatal(err)
	}
	fast, _, ra2, err := Overhead(p, Config{Mem: smallMem(), NNHW: nnhw.Config{MulAddUnits: 10, FIFODepth: 4}})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("overhead x1=%.2f%% (stalls %d) x10=%.2f%% (stalls %d)",
		100*slow, totalNNStalls(ra1), 100*fast, totalNNStalls(ra2))
	if fast > slow+0.01 {
		t.Errorf("more multiply-add units increased overhead: %.3f -> %.3f", slow, fast)
	}
}

func totalNNStalls(r *Result) int64 {
	var n int64
	for _, c := range r.Cores {
		n += c.NNStalls
	}
	return n
}

func TestTooManyThreadsRejected(t *testing.T) {
	w, _ := workloads.KernelByName("radix") // 4 threads
	p := w.Build(1)
	cfg := Config{Mem: smallMem()}
	cfg.Mem.Cores = 2
	if _, err := Run(p, cfg); err == nil {
		t.Fatal("4 threads on 2 cores accepted")
	}
}

func TestSimulatedFailureReported(t *testing.T) {
	b, err := workloads.BugByName("ptx")
	if err != nil {
		t.Fatal(err)
	}
	// Find a failing input (seed): ptx fails for odd trailing-backslash
	// counts, seed%4 == 0 or 2.
	p, _ := b.Gen(0)
	res, err := Run(p, Config{Mem: smallMem(), ACT: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Fatal("buggy input did not fail under the timing simulator")
	}
}

func TestThreadMigration(t *testing.T) {
	// Section IV-D: rotate threads across cores periodically; weights
	// travel with the threads and the machine still completes correctly.
	w, _ := workloads.KernelByName("fft")
	p := w.Build(1)
	cfg := Config{
		Mem:          smallMem(),
		ACT:          true,
		Binary:       trainedBinary(p.NumThreads()),
		MigrateEvery: 500,
	}
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut || res.Failed {
		t.Fatalf("migrated run broken: %+v", res)
	}
	if res.Migrations == 0 {
		t.Fatal("no migrations happened")
	}
	// Migration costs cycles: the same run without migration is faster.
	noMig := cfg
	noMig.MigrateEvery = 0
	base, err := Run(p, noMig)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fft: %d cycles without migration, %d with (%d migrations)",
		base.Cycles, res.Cycles, res.Migrations)
	if res.Cycles < base.Cycles {
		t.Errorf("migration made the run faster (%d < %d)", res.Cycles, base.Cycles)
	}
}

func TestMigrationWithoutACT(t *testing.T) {
	w, _ := workloads.KernelByName("canneal")
	p := w.Build(1)
	res, err := Run(p, Config{Mem: smallMem(), MigrateEvery: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut || res.Failed || res.Migrations == 0 {
		t.Fatalf("baseline migration run: %+v", res)
	}
}

func TestDeterministicCycles(t *testing.T) {
	w, _ := workloads.KernelByName("canneal")
	p := w.Build(2)
	cfg := Config{Mem: smallMem(), ACT: true, CPU: cpu.Config{}, Module: core.Config{CheckInterval: 100}}
	a, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(w.Build(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions {
		t.Fatalf("nondeterministic simulation: %d/%d vs %d/%d cycles/instr",
			a.Cycles, a.Instructions, b.Cycles, b.Instructions)
	}
}
