package mem

import (
	"testing"
	"testing/quick"
)

func small() Config {
	return Config{Cores: 2, LineSize: 64, L1Size: 1 << 10, L1Ways: 2, L2Size: 4 << 10, L2Ways: 2}
}

func TestHitLatencies(t *testing.T) {
	h := New(small())
	cfg := h.Config()
	// Cold store: memory fill.
	r := h.Access(0, 0x1000, true, 0x400000)
	if r.Level != Memory || r.Cycles != cfg.BusLatency+cfg.MemLatency {
		t.Fatalf("cold store: %+v", r)
	}
	// Load hit in L1.
	r = h.Access(0, 0x1008, false, 0)
	if r.Level != L1 || r.Cycles != cfg.L1Latency {
		t.Fatalf("L1 hit: %+v", r)
	}
}

func TestLastWriterLineGranularity(t *testing.T) {
	h := New(small())
	h.Access(0, 0x1000, true, 0xAAAA)
	// Same line, different word: line granularity reports the writer.
	r := h.Access(0, 0x1008, false, 0)
	if !r.HasWriter || r.WriterPC != 0xAAAA {
		t.Fatalf("line-granularity writer: %+v", r)
	}
}

func TestLastWriterWordGranularity(t *testing.T) {
	cfg := small()
	cfg.WordGranularity = true
	h := New(cfg)
	h.Access(0, 0x1000, true, 0xAAAA)
	h.Access(0, 0x1008, true, 0xBBBB)
	r := h.Access(0, 0x1000, false, 0)
	if !r.HasWriter || r.WriterPC != 0xAAAA {
		t.Fatalf("word 0 writer: %+v", r)
	}
	r = h.Access(0, 0x1008, false, 0)
	if !r.HasWriter || r.WriterPC != 0xBBBB {
		t.Fatalf("word 1 writer: %+v", r)
	}
	r = h.Access(0, 0x1010, false, 0)
	if r.HasWriter {
		t.Fatalf("unwritten word has a writer: %+v", r)
	}
}

func TestCacheToCacheTransferPiggybacksWriter(t *testing.T) {
	h := New(small())
	h.Access(0, 0x2000, true, 0xCAFE) // core 0 owns the line Modified
	r := h.Access(1, 0x2000, false, 0)
	if r.Level != Remote {
		t.Fatalf("expected cache-to-cache transfer, got %v", r.Level)
	}
	if !r.HasWriter || r.WriterPC != 0xCAFE || r.WriterTid != 0 {
		t.Fatalf("piggybacked writer: %+v", r)
	}
	if h.Stats().Piggybacked == 0 {
		t.Fatal("piggyback not counted")
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	h := New(small())
	h.Access(0, 0x3000, true, 0x1)
	h.Access(1, 0x3000, false, 0) // now shared
	h.Access(1, 0x3000, true, 0x2)
	if h.Stats().Invalidation == 0 {
		t.Fatal("no invalidation on write to shared line")
	}
	// Core 0's next load must miss locally and see core 1's writer.
	r := h.Access(0, 0x3000, false, 0)
	if r.Level == L1 {
		t.Fatalf("stale L1 hit after remote write: %+v", r)
	}
	if !r.HasWriter || r.WriterPC != 0x2 || r.WriterTid != 1 {
		t.Fatalf("writer after invalidation: %+v", r)
	}
}

func TestEvictionDropsMetadata(t *testing.T) {
	cfg := small()
	h := New(cfg)
	h.Access(0, 0x1000, true, 0xAA)
	// Walk addresses mapping to the same set until 0x1000 is evicted.
	setStride := uint64(cfg.L2Size / cfg.L2Ways)
	for i := uint64(1); i <= uint64(cfg.L2Ways); i++ {
		h.Access(0, 0x1000+i*setStride, true, 0xBB)
	}
	r := h.Access(0, 0x1000, false, 0)
	if r.HasWriter {
		t.Fatalf("metadata survived eviction without write-back: %+v", r)
	}
	if h.Stats().DroppedMeta == 0 {
		t.Fatal("dropped metadata not counted")
	}
}

func TestWritebackLastWriterPreservesMetadata(t *testing.T) {
	cfg := small()
	cfg.WritebackLastWriter = true
	h := New(cfg)
	h.Access(0, 0x1000, true, 0xAA)
	setStride := uint64(cfg.L2Size / cfg.L2Ways)
	for i := uint64(1); i <= uint64(cfg.L2Ways); i++ {
		h.Access(0, 0x1000+i*setStride, true, 0xBB)
	}
	r := h.Access(0, 0x1000, false, 0)
	if !r.HasWriter || r.WriterPC != 0xAA {
		t.Fatalf("metadata lost despite write-back: %+v", r)
	}
}

func TestFalseSharingAtLineGranularity(t *testing.T) {
	// Two cores write disjoint words of one line; at line granularity
	// the reader sees the *other* core's store as the writer of its own
	// word — the false sharing Section VI's last experiment measures.
	h := New(small())
	h.Access(0, 0x4000, true, 0x111)
	h.Access(1, 0x4008, true, 0x222) // other word, same line
	r := h.Access(0, 0x4000, false, 0)
	if !r.HasWriter || r.WriterPC != 0x222 {
		t.Fatalf("expected false-shared writer 0x222, got %+v", r)
	}
	// Word granularity fixes it.
	cfg := small()
	cfg.WordGranularity = true
	h = New(cfg)
	h.Access(0, 0x4000, true, 0x111)
	h.Access(1, 0x4008, true, 0x222)
	r = h.Access(0, 0x4000, false, 0)
	if !r.HasWriter || r.WriterPC != 0x111 {
		t.Fatalf("word granularity: %+v", r)
	}
}

func TestBadLineSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two line size")
		}
	}()
	New(Config{LineSize: 48})
}

func TestCoherenceInvariantProperty(t *testing.T) {
	// Property: after any access sequence, no line is Modified or
	// Exclusive in more than one core's L2.
	f := func(ops []uint16) bool {
		h := New(small())
		for _, op := range ops {
			core := int(op>>15) & 1
			write := op>>14&1 == 1
			addr := uint64(op&0x3ff) * 8
			h.Access(core, addr, write, uint64(op))
		}
		owned := make(map[uint64]int)
		for c, l2 := range h.l2 {
			for _, set := range l2.sets {
				for _, ln := range set {
					if ln.state == Modified || ln.state == Exclusive {
						if prev, ok := owned[ln.tag]; ok && prev != c {
							return false
						}
						owned[ln.tag] = c
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	h := New(small())
	h.Access(0, 0x100, true, 1)
	h.Access(0, 0x100, false, 0)
	h.Access(1, 0x100, false, 0)
	st := h.Stats()
	if st.Accesses != 3 || st.L1Hits != 1 || st.RemoteHits != 1 || st.MemFills != 1 {
		t.Fatalf("stats %+v", st)
	}
}
