// Package mem models the multicore memory hierarchy of Table III:
// per-core private L1 and L2 caches, a snoopy MESI bus at the L2 level,
// and the cache-line extension that stores the last writer's instruction
// address. It implements the paper's three cost simplifications
// (Section V): last-writer tracking at configurable granularity
// (word or line), no write-back of last-writer metadata on eviction, and
// piggybacking of last-writer information only on cache-to-cache
// transfers of dirty lines.
//
// The hierarchy tracks timing and metadata only; data values live in the
// functional VM.
package mem

import "fmt"

// State is a MESI coherence state.
type State uint8

// MESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String names the state.
func (s State) String() string { return [...]string{"I", "S", "E", "M"}[s] }

// Config describes the hierarchy. Defaults mirror Table III's bold
// entries.
type Config struct {
	Cores    int // default 8
	LineSize int // bytes; 4..128, default 64

	L1Size int // bytes; default 32 KiB
	L1Ways int // default 4
	L2Size int // bytes; default 512 KiB
	L2Ways int // default 8

	L1Latency  int // round trip, cycles; default 2
	L2Latency  int // default 10
	BusLatency int // bus arbitration + transfer; default 30
	MemLatency int // default 300

	// WordGranularity tracks one last writer per 8-byte word instead of
	// one per line (the expensive precise mode; default off).
	WordGranularity bool
	// WritebackLastWriter preserves last-writer metadata across
	// evictions in a memory-side table (the paper drops it; default off).
	WritebackLastWriter bool
	// PiggybackAll attaches last-writer metadata to every data transfer
	// instead of only cache-to-cache transfers of dirty lines (the
	// paper's default is dirty-only; default off = paper behaviour).
	PiggybackAll bool
}

func (c Config) withDefaults() Config {
	if c.Cores == 0 {
		c.Cores = 8
	}
	if c.LineSize == 0 {
		c.LineSize = 64
	}
	if c.L1Size == 0 {
		c.L1Size = 32 << 10
	}
	if c.L1Ways == 0 {
		c.L1Ways = 4
	}
	if c.L2Size == 0 {
		c.L2Size = 512 << 10
	}
	if c.L2Ways == 0 {
		c.L2Ways = 8
	}
	if c.L1Latency == 0 {
		c.L1Latency = 2
	}
	if c.L2Latency == 0 {
		c.L2Latency = 10
	}
	if c.BusLatency == 0 {
		c.BusLatency = 30
	}
	if c.MemLatency == 0 {
		c.MemLatency = 300
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		panic(fmt.Sprintf("mem: line size %d not a power of two", c.LineSize))
	}
	return c
}

// writer identifies a store instruction and its core.
type writer struct {
	pc   uint64
	core int16
	ok   bool
}

// line is one L2 cache line with coherence state and last-writer
// metadata (one writer per granule).
type line struct {
	tag     uint64
	state   State
	writers []writer
	lru     uint64
}

// cache is a set-associative tag array.
type cache struct {
	sets    [][]line
	setMask uint64
	ways    int
	granule int // writers per line (1, or words per line)
	tick    uint64
}

func newCache(size, ways, lineSize, granules int) *cache {
	lines := size / lineSize
	sets := lines / ways
	if sets == 0 {
		sets = 1
	}
	c := &cache{setMask: uint64(sets - 1), ways: ways, granule: granules}
	c.sets = make([][]line, sets)
	for i := range c.sets {
		c.sets[i] = make([]line, ways)
	}
	return c
}

// lookup returns the line holding tag, or nil.
func (c *cache) lookup(set, tag uint64) *line {
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.state != Invalid && l.tag == tag {
			c.tick++
			l.lru = c.tick
			return l
		}
	}
	return nil
}

// victim returns the line to fill (an invalid way, or the LRU way).
func (c *cache) victim(set uint64) *line {
	ways := c.sets[set]
	best := &ways[0]
	for i := range ways {
		l := &ways[i]
		if l.state == Invalid {
			return l
		}
		if l.lru < best.lru {
			best = l
		}
	}
	return best
}

// install fills a line (resetting metadata) and returns it.
func (c *cache) install(set, tag uint64, st State) *line {
	l := c.victim(set)
	l.tag = tag
	l.state = st
	if len(l.writers) != c.granule {
		l.writers = make([]writer, c.granule)
	} else {
		for i := range l.writers {
			l.writers[i] = writer{}
		}
	}
	c.tick++
	l.lru = c.tick
	return l
}

// Result reports one access's timing and the last-writer metadata a load
// observed.
type Result struct {
	Cycles    int
	WriterPC  uint64
	WriterTid int
	HasWriter bool
	Level     Level
}

// Level says where an access was satisfied.
type Level uint8

// Access service levels.
const (
	L1 Level = iota
	L2
	Remote // cache-to-cache transfer
	Memory
)

// String names the level.
func (l Level) String() string { return [...]string{"L1", "L2", "remote", "memory"}[l] }

// Stats counts hierarchy activity.
type Stats struct {
	Accesses     uint64
	L1Hits       uint64
	L2Hits       uint64
	RemoteHits   uint64
	MemFills     uint64
	Invalidation uint64
	Writebacks   uint64
	Piggybacked  uint64 // transfers that carried last-writer metadata
	DroppedMeta  uint64 // evictions that discarded last-writer metadata
}

// Hierarchy is the full multicore memory system.
type Hierarchy struct {
	cfg  Config
	l1   []*cache
	l2   []*cache
	memW map[uint64]writer // memory-side last-writer table (optional)
	st   Stats
}

// New builds a hierarchy for the configuration.
func New(cfg Config) *Hierarchy {
	cfg = cfg.withDefaults()
	gran := 1
	if cfg.WordGranularity {
		gran = cfg.LineSize / 8
		if gran == 0 {
			gran = 1
		}
	}
	h := &Hierarchy{cfg: cfg}
	for i := 0; i < cfg.Cores; i++ {
		h.l1 = append(h.l1, newCache(cfg.L1Size, cfg.L1Ways, cfg.LineSize, gran))
		h.l2 = append(h.l2, newCache(cfg.L2Size, cfg.L2Ways, cfg.LineSize, gran))
	}
	if cfg.WritebackLastWriter {
		h.memW = make(map[uint64]writer)
	}
	return h
}

// Config returns the (defaulted) configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Stats returns a copy of the counters.
func (h *Hierarchy) Stats() Stats { return h.st }

func (h *Hierarchy) lineAddr(addr uint64) uint64 { return addr &^ uint64(h.cfg.LineSize-1) }

func (h *Hierarchy) setTag(c *cache, addr uint64) (set, tag uint64) {
	la := addr / uint64(h.cfg.LineSize)
	return la & c.setMask, la
}

// granuleIdx returns the writer slot for addr within a line.
func (h *Hierarchy) granuleIdx(c *cache, addr uint64) int {
	if c.granule == 1 {
		return 0
	}
	return int(addr%uint64(h.cfg.LineSize)) / 8
}

// Access performs one memory access by core on addr: write=true for
// stores (pc is the store's instruction address), write=false for loads
// (the result carries the observed last writer, if any).
func (h *Hierarchy) Access(core int, addr uint64, write bool, pc uint64) Result {
	h.st.Accesses++
	l2 := h.l2[core]
	set2, tag := h.setTag(l2, addr)
	l1 := h.l1[core]
	set1, _ := h.setTag(l1, addr)

	res := Result{}
	ln2 := l2.lookup(set2, tag)
	ln1 := l1.lookup(set1, tag)

	switch {
	case ln1 != nil && ln2 != nil && (!write || ln2.state == Modified || ln2.state == Exclusive):
		// L1 hit with sufficient permission.
		res.Cycles = h.cfg.L1Latency
		res.Level = L1
		h.st.L1Hits++
	case ln2 != nil && (!write || ln2.state == Modified || ln2.state == Exclusive):
		// L2 hit; refill L1 tags.
		res.Cycles = h.cfg.L2Latency
		res.Level = L2
		h.st.L2Hits++
		l1.install(set1, tag, ln2.state)
	default:
		// Bus transaction: upgrade, cache-to-cache transfer, or memory.
		ln2 = h.busTransaction(core, addr, write, &res)
		l1.install(set1, tag, ln2.state)
	}

	gi := h.granuleIdx(l2, addr)
	if ln2 == nil {
		// busTransaction installed it; re-look it up.
		ln2 = l2.lookup(set2, tag)
	}
	if write {
		if ln2.state != Modified {
			ln2.state = Modified
		}
		ln2.writers[gi] = writer{pc: pc, core: int16(core), ok: true}
		if w1 := l1.lookup(set1, tag); w1 != nil {
			w1.state = Modified
		}
	} else if w := ln2.writers[gi]; w.ok {
		res.WriterPC = w.pc
		res.WriterTid = int(w.core)
		res.HasWriter = true
	}
	return res
}

// busTransaction services an L2 miss or write upgrade, returning the
// (installed or upgraded) local line.
func (h *Hierarchy) busTransaction(core int, addr uint64, write bool, res *Result) *line {
	l2 := h.l2[core]
	set2, tag := h.setTag(l2, addr)

	// Snoop the other cores.
	var owner *line
	ownerCore := -1
	anyShared := false
	for c := range h.l2 {
		if c == core {
			continue
		}
		oset, _ := h.setTag(h.l2[c], addr)
		if ln := h.l2[c].lookup(oset, tag); ln != nil {
			anyShared = true
			if ln.state == Modified || ln.state == Exclusive {
				owner, ownerCore = ln, c
			}
			if write {
				// BusRdX: invalidate every other copy (and its L1 tag).
				ln.state = Invalid
				h.invalidateL1(c, addr)
				h.st.Invalidation++
			} else if ln.state == Modified || ln.state == Exclusive {
				ln.state = Shared
			}
		}
	}

	// Write upgrade on a locally Shared line avoids a refill.
	if local := l2.lookup(set2, tag); local != nil {
		res.Cycles = h.cfg.BusLatency + h.cfg.L2Latency
		res.Level = L2
		h.st.L2Hits++
		local.state = Modified
		return local
	}

	st := Exclusive
	if !write && anyShared {
		st = Shared
	}
	if write {
		st = Modified
	}

	var filled *line
	switch {
	case owner != nil && owner.state != Invalid || ownerCore >= 0 && write:
		// Cache-to-cache transfer from the previous owner. The paper
		// piggybacks last-writer metadata only when the source line was
		// dirty (a read miss on a dirty line); PiggybackAll relaxes it.
		res.Cycles = h.cfg.BusLatency + 2*h.cfg.L2Latency
		res.Level = Remote
		h.st.RemoteHits++
		filled = h.installEvicting(l2, set2, tag, st)
		if owner != nil {
			dirty := true // owner was M or E before downgrade; treat E as clean
			if h.cfg.PiggybackAll || dirty {
				copy(filled.writers, owner.writers)
				h.st.Piggybacked++
			}
		}
	default:
		// Fill from memory.
		res.Cycles = h.cfg.BusLatency + h.cfg.MemLatency
		res.Level = Memory
		h.st.MemFills++
		filled = h.installEvicting(l2, set2, tag, st)
		if h.memW != nil {
			gran := uint64(h.cfg.LineSize)
			if l2.granule > 1 {
				gran = 8
			}
			base := h.lineAddr(addr)
			for i := range filled.writers {
				if w, ok := h.memW[base+uint64(i)*gran]; ok {
					filled.writers[i] = w
				}
			}
		}
	}
	return filled
}

// installEvicting installs a line, handling the victim's writeback and
// metadata fate first.
func (h *Hierarchy) installEvicting(c *cache, set, tag uint64, st State) *line {
	v := c.victim(set)
	if v.state != Invalid {
		if v.state == Modified {
			h.st.Writebacks++
		}
		// Eviction drops last-writer metadata unless the memory-side
		// table is enabled (Section V simplification 2).
		if h.memW != nil {
			gran := uint64(h.cfg.LineSize)
			if c.granule > 1 {
				gran = 8
			}
			base := v.tag * uint64(h.cfg.LineSize)
			for i, w := range v.writers {
				if w.ok {
					h.memW[base+uint64(i)*gran] = w
				}
			}
		} else {
			for _, w := range v.writers {
				if w.ok {
					h.st.DroppedMeta++
					break
				}
			}
		}
		// Inclusion: the L1 copy goes too. The victim belongs to the
		// core whose cache this is; find it by identity.
		for core, l2c := range h.l2 {
			if l2c == c {
				h.invalidateL1(core, v.tag*uint64(h.cfg.LineSize))
			}
		}
	}
	return c.install(set, tag, st)
}

// invalidateL1 drops the L1 copy of addr's line on the given core.
func (h *Hierarchy) invalidateL1(core int, addr uint64) {
	l1 := h.l1[core]
	set, tag := h.setTag(l1, addr)
	if ln := l1.lookup(set, tag); ln != nil {
		ln.state = Invalid
	}
}
