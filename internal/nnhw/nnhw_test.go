package nnhw

import (
	"testing"
	"testing/quick"
)

func TestNeuronLatencyKnob(t *testing.T) {
	// Table III varies multiply-add units over 1, 2, 5, 10 with M=10,
	// T_muladd=1, T_rest=2: T = ceil(10/x) + 2.
	want := map[int]int{1: 12, 2: 7, 5: 4, 10: 3}
	for x, wantT := range want {
		c := Config{MaxInputs: 10, MulAddUnits: x, TMulAdd: 1, TRest: 2}
		if got := c.NeuronLatency(); got != wantT {
			t.Errorf("x=%d: T=%d, want %d", x, got, wantT)
		}
	}
}

func TestLatencyMonotonicInUnits(t *testing.T) {
	f := func(m, x uint8) bool {
		mm := 1 + int(m)%10
		xx := 1 + int(x)%10
		a := Config{MaxInputs: mm, MulAddUnits: xx}.NeuronLatency()
		b := Config{MaxInputs: mm, MulAddUnits: xx + 1}.NeuronLatency()
		return b <= a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrainingIntervalIs4T(t *testing.T) {
	c := Config{}
	if c.TrainingInterval() != 4*c.TestingInterval() {
		t.Fatalf("training interval %d, want 4×%d", c.TrainingInterval(), c.TestingInterval())
	}
}

func TestPipelineThroughputTesting(t *testing.T) {
	p := NewPipeline(Config{FIFODepth: 4})
	T := p.Config().NeuronLatency()
	// Fill the FIFO, then measure steady-state completions.
	for i := 0; i < 4; i++ {
		if !p.Offer() {
			t.Fatalf("offer %d rejected with empty pipeline", i)
		}
	}
	if p.Offer() {
		t.Fatal("offer accepted with full FIFO")
	}
	total := 0
	cycles := 0
	for total < 4 {
		total += p.Tick()
		cycles++
		if cycles > 100*T {
			t.Fatal("pipeline wedged")
		}
	}
	// Pipelined: after the fill latency, roughly one result per T cycles.
	maxExpected := p.latencyForTest() + 4*T
	if cycles > maxExpected {
		t.Errorf("4 results took %d cycles, want <= %d", cycles, maxExpected)
	}
}

// latencyForTest exposes the internal latency for bounds in tests.
func (p *Pipeline) latencyForTest() int { return p.latency() }

func TestPipelineTrainingSerializes(t *testing.T) {
	test := NewPipeline(Config{FIFODepth: 8})
	train := NewPipeline(Config{FIFODepth: 8})
	train.SetTraining(true)
	for i := 0; i < 8; i++ {
		test.Offer()
		train.Offer()
	}
	testCycles := test.Drain()
	trainCycles := train.Drain()
	if trainCycles <= 2*testCycles {
		t.Errorf("training drain %d not substantially slower than testing %d", trainCycles, testCycles)
	}
}

func TestPipelineStats(t *testing.T) {
	p := NewPipeline(Config{FIFODepth: 2})
	p.Offer()
	p.Offer()
	p.Offer() // rejected
	p.Drain()
	if p.Stats.Accepted != 2 || p.Stats.Rejected != 1 || p.Stats.Completed != 2 {
		t.Fatalf("stats %+v", p.Stats)
	}
	if p.Occupancy() != 0 {
		t.Fatal("pipeline not empty after drain")
	}
}

func TestPipelineConservation(t *testing.T) {
	// Property: accepted = completed after drain, for arbitrary offer
	// patterns and configurations.
	f := func(offers []bool, units, fifo uint8) bool {
		p := NewPipeline(Config{
			MulAddUnits: 1 + int(units)%10,
			FIFODepth:   1 + int(fifo)%16,
		})
		for i, o := range offers {
			if o {
				p.Offer()
			}
			if i%3 == 0 {
				p.Tick()
			}
			if i%17 == 0 {
				p.SetTraining(!p.Training())
			}
		}
		p.Drain()
		return p.Stats.Accepted == p.Stats.Completed
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNPULatency(t *testing.T) {
	n := NPU{}
	// A 10-10-1 topology on 8 PEs: hidden layer needs 2 batches.
	lat := n.InferenceLatency(10, 10)
	if lat <= 0 {
		t.Fatal("non-positive latency")
	}
	// More PEs must not be slower.
	big := NPU{PEs: 32}
	if big.InferenceLatency(10, 10) > lat {
		t.Error("more PEs slowed the NPU down")
	}
	if n.TrainingLatency(10, 10) <= 2*lat {
		t.Error("training should cost several forward passes")
	}
}

// TestPipelineBeatsNPUForACT is contribution 3's claim: for ACT's small
// i-h-1 topologies at high input rates, the dedicated pipeline
// sustains a higher throughput than the time-multiplexed NPU.
func TestPipelineBeatsNPUForACT(t *testing.T) {
	cfg := Config{MaxInputs: 10, MulAddUnits: 1}
	pipeInterval := cfg.TestingInterval()
	npuInterval := NPU{}.Interval(10, 10)
	if pipeInterval >= npuInterval {
		t.Fatalf("pipeline interval %d >= NPU interval %d: design advantage gone",
			pipeInterval, npuInterval)
	}
}
