package nnhw

// NPU models the fully configurable neural accelerator of Esmaeilzadeh
// et al. that Section IV-A argues against for ACT's use case: a fixed
// pool of processing engines onto which an arbitrary topology is
// time-multiplexed by a scheduler. Flexibility costs a per-layer
// scheduling overhead and serializes layers whenever the layer is wider
// than the PE pool; the comparison bench quantifies the gap against the
// three-stage pipeline for ACT's i-h-1 topologies.
type NPU struct {
	PEs           int // processing engines; default 8
	TMulAdd       int // multiply-add latency per input weight; default 1
	TRest         int // accumulate + activation; default 2
	SchedOverhead int // cycles to (re)schedule one layer; default 4
}

func (n NPU) withDefaults() NPU {
	if n.PEs == 0 {
		n.PEs = 8
	}
	if n.TMulAdd == 0 {
		n.TMulAdd = 1
	}
	if n.TRest == 0 {
		n.TRest = 2
	}
	if n.SchedOverhead == 0 {
		n.SchedOverhead = 4
	}
	return n
}

// LayerLatency returns the cycles to evaluate one layer of `neurons`
// neurons with `fanIn` inputs each: the scheduler configures the layer,
// the PE pool processes ceil(neurons/PEs) batches, and each neuron needs
// fanIn multiply-adds plus the activation.
func (n NPU) LayerLatency(neurons, fanIn int) int {
	n = n.withDefaults()
	batches := (neurons + n.PEs - 1) / n.PEs
	perNeuron := fanIn*n.TMulAdd + n.TRest
	return n.SchedOverhead + batches*perNeuron
}

// InferenceLatency returns the cycles for one i-h-1 inference. Layers
// run back to back — the time-multiplexed design cannot pipeline across
// layers because the PE pool is reused.
func (n NPU) InferenceLatency(inputs, hidden int) int {
	return n.LayerLatency(hidden, inputs) + n.LayerLatency(1, hidden)
}

// Interval returns the initiation interval: with one shared PE pool a
// new inference starts only after the previous one finishes.
func (n NPU) Interval(inputs, hidden int) int { return n.InferenceLatency(inputs, hidden) }

// TrainingLatency returns the cycles for one backpropagation pass:
// forward, output-layer update, hidden-layer update, and weight
// write-back all serialize on the PE pool (≈ 4 forward passes plus
// rescheduling), mirroring the 4T factor of the pipelined design but
// with the scheduling tax on every phase.
func (n NPU) TrainingLatency(inputs, hidden int) int {
	fwd := n.InferenceLatency(inputs, hidden)
	return 4*fwd + 2*n.withDefaults().SchedOverhead
}
