// Package nnhw models the timing of ACT's neural hardware (Section
// IV-A): a partially configurable one-hidden-layer network mapped onto a
// three-stage pipeline — S1, an input FIFO; S2, the hidden layer of M
// neurons; S3, the single output neuron — with the number of
// multiply-add units per neuron as the latency knob. The package also
// models the fully configurable, time-multiplexed design of
// Esmaeilzadeh et al. that the paper compares against.
//
// Functional classification lives in internal/nn; this package answers
// the cycle-accounting questions: how long does a neuron take, how often
// can the pipeline accept an input, and when does a full FIFO stall the
// load at the head of the ROB.
package nnhw

import "fmt"

// Config describes one neuron's datapath and the module's FIFO.
type Config struct {
	MaxInputs   int // M: neuron fan-in and hidden-layer width; default 10
	MulAddUnits int // cascaded multiply-add units per neuron; default 1
	TMulAdd     int // latency of one multiply-add, cycles; default 1
	TRest       int // accumulator + sigmoid table, cycles; default 2
	FIFODepth   int // input FIFO entries; default 8
}

func (c Config) withDefaults() Config {
	if c.MaxInputs == 0 {
		c.MaxInputs = 10
	}
	if c.MulAddUnits == 0 {
		c.MulAddUnits = 1
	}
	if c.TMulAdd == 0 {
		c.TMulAdd = 1
	}
	if c.TRest == 0 {
		c.TRest = 2
	}
	if c.FIFODepth == 0 {
		c.FIFODepth = 8
	}
	return c
}

// NeuronLatency returns T, the cycles one neuron needs for an input:
// ceil(M/x)·T_muladd + T_rest. With x multiply-add units the M
// multiplications and additions complete in ceil(M/x) waves.
func (c Config) NeuronLatency() int {
	c = c.withDefaults()
	waves := (c.MaxInputs + c.MulAddUnits - 1) / c.MulAddUnits
	return waves*c.TMulAdd + c.TRest
}

// TestingInterval returns the pipeline's steady-state initiation
// interval in testing mode: one input every T cycles when the FIFO is
// full (S2 and S3 each take T; S1 takes one cycle).
func (c Config) TestingInterval() int { return c.NeuronLatency() }

// TrainingInterval returns the initiation interval in training mode:
// back-propagation makes the stage connections bidirectional, so the
// network finishes one input completely before accepting another —
// every 4T cycles when the FIFO is full (Section IV-A).
func (c Config) TrainingInterval() int { return 4 * c.NeuronLatency() }

// Pipeline is the cycle-level occupancy model of the three-stage design.
// It tracks only timing: the caller performs the functional
// classification with the software network and uses the pipeline to know
// when inputs are accepted and when results complete.
type Pipeline struct {
	cfg      Config
	training bool

	queue   int   // occupied FIFO entries
	busy    int   // cycles until the compute stages accept the next input
	inUnit  int   // inputs currently inside S2/S3
	done    []int // countdowns for in-flight inputs (completion cycles)
	Stats   PipeStats
	current int64 // current cycle
}

// PipeStats counts pipeline activity.
type PipeStats struct {
	Accepted  uint64 // inputs accepted into the FIFO
	Rejected  uint64 // offers rejected because the FIFO was full
	Completed uint64 // classifications finished
	Flushed   uint64 // inputs discarded by a context-switch flush
	Cycles    int64  // cycles ticked
}

// NewPipeline returns an idle pipeline.
func NewPipeline(cfg Config) *Pipeline {
	return &Pipeline{cfg: cfg.withDefaults()}
}

// Config returns the (defaulted) configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// SetTraining switches between testing mode (pipelined, interval T) and
// training mode (serialized, interval 4T). The in-flight inputs drain at
// their already-scheduled times.
func (p *Pipeline) SetTraining(training bool) { p.training = training }

// Training reports the current mode.
func (p *Pipeline) Training() bool { return p.training }

// interval returns the current initiation interval.
func (p *Pipeline) interval() int {
	if p.training {
		return p.cfg.TrainingInterval()
	}
	return p.cfg.TestingInterval()
}

// latency returns the FIFO-to-result latency for an input issued now:
// S1 (1 cycle) + S2 (T) + S3 (T) in testing; a full serialized pass in
// training.
func (p *Pipeline) latency() int {
	t := p.cfg.NeuronLatency()
	if p.training {
		return 1 + 4*t
	}
	return 1 + 2*t
}

// Offer presents one input (a formed RAW dependence sequence). It
// returns false when the FIFO is full — the hardware condition that
// stalls the corresponding load's retirement.
func (p *Pipeline) Offer() bool {
	if p.queue >= p.cfg.FIFODepth {
		p.Stats.Rejected++
		return false
	}
	p.queue++
	p.Stats.Accepted++
	return true
}

// Full reports whether the FIFO has no free entry.
func (p *Pipeline) Full() bool { return p.queue >= p.cfg.FIFODepth }

// Occupancy returns the number of queued plus in-flight inputs.
func (p *Pipeline) Occupancy() int { return p.queue + p.inUnit }

// Tick advances one cycle and returns the number of classifications that
// completed this cycle.
func (p *Pipeline) Tick() int {
	p.current++
	p.Stats.Cycles++
	if p.busy > 0 {
		p.busy--
	}
	// Issue from the FIFO into the compute stages.
	if p.queue > 0 && p.busy == 0 {
		p.queue--
		p.inUnit++
		p.done = append(p.done, p.latency())
		p.busy = p.interval()
	}
	completed := 0
	for i := 0; i < len(p.done); {
		p.done[i]--
		if p.done[i] <= 0 {
			p.done = append(p.done[:i], p.done[i+1:]...)
			p.inUnit--
			completed++
			continue
		}
		i++
	}
	p.Stats.Completed += uint64(completed)
	return completed
}

// Flush discards all queued and in-flight inputs — the paper's "flush
// the in-flight inputs before context switch or thread migration". It
// returns how many inputs were discarded.
func (p *Pipeline) Flush() int {
	n := p.queue + p.inUnit
	p.queue = 0
	p.inUnit = 0
	p.done = p.done[:0]
	p.busy = 0
	p.Stats.Flushed += uint64(n)
	return n
}

// Drain runs the pipeline until empty and returns the cycles it took.
func (p *Pipeline) Drain() int {
	cycles := 0
	for p.queue > 0 || p.inUnit > 0 {
		p.Tick()
		cycles++
		if cycles > 1<<24 {
			panic("nnhw: pipeline failed to drain")
		}
	}
	return cycles
}

// String summarizes the design point.
func (c Config) String() string {
	c = c.withDefaults()
	return fmt.Sprintf("M=%d muladd=%d T=%d fifo=%d", c.MaxInputs, c.MulAddUnits, c.NeuronLatency(), c.FIFODepth)
}
