// Package isa defines the small RISC-like instruction set executed by the
// workload virtual machine. Programs built from this ISA stand in for the
// x86 binaries the ACT paper instruments with PIN: every instruction has a
// stable instruction address (PC), loads and stores carry effective
// addresses, and that is all ACT's communication tracking consumes.
package isa

import "fmt"

// Op enumerates the operations of the ISA.
type Op uint8

// Operation codes. Arithmetic operates on 64-bit signed registers.
const (
	Nop    Op = iota
	Li        // rd <- imm
	Mov       // rd <- rs1
	Add       // rd <- rs1 + rs2
	Addi      // rd <- rs1 + imm
	Sub       // rd <- rs1 - rs2
	Mul       // rd <- rs1 * rs2
	Div       // rd <- rs1 / rs2 (0 if rs2 == 0)
	Rem       // rd <- rs1 % rs2 (0 if rs2 == 0)
	And       // rd <- rs1 & rs2
	Or        // rd <- rs1 | rs2
	Xor       // rd <- rs1 ^ rs2
	Shl       // rd <- rs1 << (rs2 & 63)
	Shr       // rd <- rs1 >> (rs2 & 63) (logical)
	Slt       // rd <- 1 if rs1 < rs2 else 0
	Seq       // rd <- 1 if rs1 == rs2 else 0
	Load      // rd <- mem[rs1 + imm]
	Store     // mem[rs1 + imm] <- rs2
	Beqz      // if rs1 == 0 jump to Target
	Bnez      // if rs1 != 0 jump to Target
	Jmp       // jump to Target
	Lock      // acquire lock at address rs1 + imm (blocks)
	Unlock    // release lock at address rs1 + imm
	Fence     // full memory fence (ordering no-op in the functional VM)
	Atomic    // mem[rs1+imm] <- mem[rs1+imm] + rs2, rd <- old value (atomic)
	Assert    // fail the thread if rs1 == 0
	Out       // append rs1 to the thread's output stream
	Pause     // scheduling hint: likely context-switch point
	Halt      // stop the thread
)

var opNames = [...]string{
	Nop: "nop", Li: "li", Mov: "mov", Add: "add", Addi: "addi", Sub: "sub",
	Mul: "mul", Div: "div", Rem: "rem", And: "and", Or: "or", Xor: "xor",
	Shl: "shl", Shr: "shr", Slt: "slt", Seq: "seq", Load: "load",
	Store: "store", Beqz: "beqz", Bnez: "bnez", Jmp: "jmp", Lock: "lock",
	Unlock: "unlock", Fence: "fence", Atomic: "atomic", Assert: "assert",
	Out: "out", Pause: "pause", Halt: "halt",
}

// String returns the mnemonic for the op.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsMem reports whether the op accesses data memory.
func (o Op) IsMem() bool { return o == Load || o == Store || o == Atomic }

// IsBranch reports whether the op may redirect control flow.
func (o Op) IsBranch() bool { return o == Beqz || o == Bnez || o == Jmp }

// IsSync reports whether the op is a synchronization operation.
func (o Op) IsSync() bool { return o == Lock || o == Unlock || o == Fence || o == Atomic }

// Register indices. The ISA has 32 general-purpose registers; by
// convention SP and FP mirror x86's ESP/EBP so that ACT's stack-load
// filter ("ignore any load that uses stack registers") has something to
// key on.
const (
	NumRegs = 32
	SP      = 30 // stack pointer
	FP      = 31 // frame pointer
)

// Instr is a single decoded instruction. Instructions are kept decoded
// (rather than bit-packed) because nothing in the reproduction needs the
// packed form; the PC assigned by the containing program is the identity
// that ACT tracks.
type Instr struct {
	Op     Op
	Rd     uint8 // destination register
	Rs1    uint8 // first source register (base register for memory ops)
	Rs2    uint8 // second source register (value register for Store/Atomic)
	Imm    int64 // immediate / memory displacement
	Target int32 // branch target (instruction index within the thread)
}

// UsesStackReg reports whether a memory instruction addresses through the
// stack or frame pointer. ACT filters such loads to cut tracking overhead.
func (in Instr) UsesStackReg() bool {
	return in.Op.IsMem() && (in.Rs1 == SP || in.Rs1 == FP)
}

// SrcRegs appends the registers this instruction reads to dst. The
// timing core's scoreboard uses this to serialize dependent issues.
func (in Instr) SrcRegs(dst []uint8) []uint8 {
	switch in.Op {
	case Nop, Li, Jmp, Fence, Pause, Halt:
		return dst
	case Mov, Addi, Load, Beqz, Bnez, Lock, Unlock, Assert, Out:
		return append(dst, in.Rs1)
	default: // two-source ALU ops, Store, Atomic
		return append(dst, in.Rs1, in.Rs2)
	}
}

// DestReg returns the register this instruction writes and whether it
// writes one.
func (in Instr) DestReg() (uint8, bool) {
	switch in.Op {
	case Li, Mov, Add, Addi, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr,
		Slt, Seq, Load, Atomic:
		return in.Rd, true
	default:
		return 0, false
	}
}

// String renders a human-readable disassembly of the instruction.
func (in Instr) String() string {
	switch in.Op {
	case Nop, Fence, Pause, Halt:
		return in.Op.String()
	case Li:
		return fmt.Sprintf("li r%d, %d", in.Rd, in.Imm)
	case Mov:
		return fmt.Sprintf("mov r%d, r%d", in.Rd, in.Rs1)
	case Addi:
		return fmt.Sprintf("addi r%d, r%d, %d", in.Rd, in.Rs1, in.Imm)
	case Load:
		return fmt.Sprintf("load r%d, %d(r%d)", in.Rd, in.Imm, in.Rs1)
	case Store:
		return fmt.Sprintf("store r%d, %d(r%d)", in.Rs2, in.Imm, in.Rs1)
	case Atomic:
		return fmt.Sprintf("atomic r%d, r%d, %d(r%d)", in.Rd, in.Rs2, in.Imm, in.Rs1)
	case Beqz, Bnez:
		return fmt.Sprintf("%s r%d, @%d", in.Op, in.Rs1, in.Target)
	case Jmp:
		return fmt.Sprintf("jmp @%d", in.Target)
	case Lock, Unlock:
		return fmt.Sprintf("%s %d(r%d)", in.Op, in.Imm, in.Rs1)
	case Assert, Out:
		return fmt.Sprintf("%s r%d", in.Op, in.Rs1)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	}
}

// PCStride is the byte distance between consecutive instruction
// addresses; thread t's instruction i has PC ThreadBase(t) + i*PCStride.
const PCStride = 4

// ThreadBase returns the base instruction address of thread t's code.
// Each thread gets a disjoint 16 MiB code region so PCs never collide.
func ThreadBase(t int) uint64 { return 0x400000 + uint64(t)<<24 }

// PC computes the instruction address of instruction index i in thread t.
func PC(t, i int) uint64 { return ThreadBase(t) + uint64(i)*PCStride }

// ThreadOf recovers the thread index from an instruction address produced
// by PC.
func ThreadOf(pc uint64) int { return int((pc - 0x400000) >> 24) }

// IndexOf recovers the instruction index from an instruction address.
func IndexOf(pc uint64) int {
	return int((pc - ThreadBase(ThreadOf(pc))) / PCStride)
}
