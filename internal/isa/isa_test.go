package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpStrings(t *testing.T) {
	for op := Nop; op <= Halt; op++ {
		if s := op.String(); s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("op %d has no mnemonic", op)
		}
	}
	if got := Op(200).String(); got != "op(200)" {
		t.Errorf("unknown op renders %q", got)
	}
}

func TestOpClasses(t *testing.T) {
	memOps := map[Op]bool{Load: true, Store: true, Atomic: true}
	branchOps := map[Op]bool{Beqz: true, Bnez: true, Jmp: true}
	syncOps := map[Op]bool{Lock: true, Unlock: true, Fence: true, Atomic: true}
	for op := Nop; op <= Halt; op++ {
		if op.IsMem() != memOps[op] {
			t.Errorf("%v: IsMem = %v", op, op.IsMem())
		}
		if op.IsBranch() != branchOps[op] {
			t.Errorf("%v: IsBranch = %v", op, op.IsBranch())
		}
		if op.IsSync() != syncOps[op] {
			t.Errorf("%v: IsSync = %v", op, op.IsSync())
		}
	}
}

func TestPCRoundTrip(t *testing.T) {
	f := func(tid uint8, idx uint16) bool {
		tt, ii := int(tid%64), int(idx)
		pc := PC(tt, ii)
		return ThreadOf(pc) == tt && IndexOf(pc) == ii
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThreadBasesDisjoint(t *testing.T) {
	for a := 0; a < 16; a++ {
		for b := a + 1; b < 16; b++ {
			// A thread's code region is 16 MiB; bases must be at least
			// that far apart.
			if ThreadBase(b)-ThreadBase(a) < 1<<24 {
				t.Fatalf("thread %d and %d code regions overlap", a, b)
			}
		}
	}
}

func TestUsesStackReg(t *testing.T) {
	if !(Instr{Op: Load, Rs1: SP}).UsesStackReg() {
		t.Error("load via SP not flagged as stack")
	}
	if !(Instr{Op: Store, Rs1: FP}).UsesStackReg() {
		t.Error("store via FP not flagged as stack")
	}
	if (Instr{Op: Load, Rs1: 3}).UsesStackReg() {
		t.Error("load via r3 flagged as stack")
	}
	if (Instr{Op: Add, Rs1: SP}).UsesStackReg() {
		t.Error("non-memory op flagged as stack")
	}
}

func TestSrcDestRegs(t *testing.T) {
	cases := []struct {
		in   Instr
		srcs []uint8
		dest int // -1 = none
	}{
		{Instr{Op: Nop}, nil, -1},
		{Instr{Op: Li, Rd: 3}, nil, 3},
		{Instr{Op: Mov, Rd: 1, Rs1: 2}, []uint8{2}, 1},
		{Instr{Op: Add, Rd: 1, Rs1: 2, Rs2: 3}, []uint8{2, 3}, 1},
		{Instr{Op: Addi, Rd: 1, Rs1: 2}, []uint8{2}, 1},
		{Instr{Op: Load, Rd: 4, Rs1: 5}, []uint8{5}, 4},
		{Instr{Op: Store, Rs1: 5, Rs2: 6}, []uint8{5, 6}, -1},
		{Instr{Op: Atomic, Rd: 4, Rs1: 5, Rs2: 6}, []uint8{5, 6}, 4},
		{Instr{Op: Beqz, Rs1: 7}, []uint8{7}, -1},
		{Instr{Op: Jmp}, nil, -1},
		{Instr{Op: Assert, Rs1: 8}, []uint8{8}, -1},
		{Instr{Op: Halt}, nil, -1},
	}
	for _, c := range cases {
		got := c.in.SrcRegs(nil)
		if len(got) != len(c.srcs) {
			t.Errorf("%v: srcs %v, want %v", c.in, got, c.srcs)
			continue
		}
		for i := range got {
			if got[i] != c.srcs[i] {
				t.Errorf("%v: srcs %v, want %v", c.in, got, c.srcs)
			}
		}
		rd, has := c.in.DestReg()
		if c.dest == -1 && has {
			t.Errorf("%v: unexpected dest %d", c.in, rd)
		}
		if c.dest >= 0 && (!has || rd != uint8(c.dest)) {
			t.Errorf("%v: dest %d/%v, want %d", c.in, rd, has, c.dest)
		}
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: Li, Rd: 1, Imm: 42}, "li r1, 42"},
		{Instr{Op: Load, Rd: 2, Rs1: 3, Imm: 8}, "load r2, 8(r3)"},
		{Instr{Op: Store, Rs2: 4, Rs1: 5, Imm: -8}, "store r4, -8(r5)"},
		{Instr{Op: Beqz, Rs1: 6, Target: 12}, "beqz r6, @12"},
		{Instr{Op: Jmp, Target: 3}, "jmp @3"},
		{Instr{Op: Halt}, "halt"},
		{Instr{Op: Add, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
