package ranking

import (
	"bytes"
	"reflect"
	"testing"

	"act/internal/core"
	"act/internal/deps"
)

// fuzzSeedReports builds representative reports whose Save output seeds
// the corpus: empty, single-candidate, and multi-candidate with full
// sequences.
func fuzzSeedReports() []*Report {
	seq := deps.Sequence{
		{S: 0x400100, L: 0x400200, Inter: false},
		{S: 0x400300, L: 0x400400, Inter: true},
	}
	return []*Report{
		{},
		{Total: 3, Pruned: 1, Ranked: []Candidate{
			{Matches: 2, Runs: 1, Entry: core.DebugEntry{
				Seq: seq, Output: 0.12, At: 7, Mode: core.Testing, Proc: 3,
			}},
		}},
		{Total: 10, Pruned: 4, Ranked: []Candidate{
			{Matches: 5, Runs: 2, Entry: core.DebugEntry{Seq: seq.Clone(), Output: 0.01, At: 1}},
			{Matches: 1, Runs: 1, Entry: core.DebugEntry{Seq: deps.Sequence{{S: 1, L: 2}}, Output: 0.49, At: 2, Mode: core.Training}},
			{Matches: 0, Runs: 0, Entry: core.DebugEntry{}},
		}},
	}
}

// FuzzLoad throws arbitrary bytes at LoadReport. The invariants: it must
// never panic, and any input it accepts must round-trip — saving the
// loaded report and loading it again yields the same report. Corrupted
// or truncated inputs must come back as errors, not as garbage reports.
func FuzzLoad(f *testing.F) {
	for _, r := range fuzzSeedReports() {
		var buf bytes.Buffer
		if err := r.Save(&buf); err != nil {
			f.Fatalf("seed save: %v", err)
		}
		f.Add(buf.Bytes())
		// Damaged variants of a valid file exercise the CRC and
		// truncation paths from interesting starting points.
		if buf.Len() > 12 {
			flipped := append([]byte(nil), buf.Bytes()...)
			flipped[buf.Len()/2] ^= 0x40
			f.Add(flipped)
			f.Add(buf.Bytes()[:buf.Len()-5])
		}
	}
	f.Add([]byte{})
	f.Add([]byte("ACTR"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := LoadReport(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := r.Save(&buf); err != nil {
			t.Fatalf("re-saving accepted report: %v", err)
		}
		r2, err := LoadReport(&buf)
		if err != nil {
			t.Fatalf("re-loading re-saved report: %v", err)
		}
		if !reflect.DeepEqual(r, r2) {
			t.Fatalf("round-trip mismatch:\nfirst:  %+v\nsecond: %+v", r, r2)
		}
	})
}
