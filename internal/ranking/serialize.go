package ranking

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"act/internal/wire"
)

// Report persistence. A diagnosis report used to be print-only; fleet
// operation needs it as an artifact — saved by actdiag or actd, loaded
// later to re-rank under a different strategy or to merge with newer
// evidence. The format reuses the wire package's entry codec under a
// whole-body CRC:
//
//	magic "ACTR" | u16 version=1 | u16 reserved
//	u32 total | u32 pruned | u32 candidate count
//	per candidate: u32 matches | u32 runs | wire entry
//	u32 crc32(everything after the magic/version prologue)

const (
	reportMagic   = "ACTR"
	reportVersion = 1
)

// Report-file errors.
var (
	ErrReportMagic   = errors.New("ranking: not a report file")
	ErrReportVersion = errors.New("ranking: unsupported report version")
	ErrReportCRC     = errors.New("ranking: report body fails its checksum")
)

// AppendReport serializes the report body — counts and candidates, no
// magic, version, or checksum — to dst and returns the extended slice.
// This is the embeddable form: the RCA verdict format (internal/rca)
// wraps it inside its own framed file, and Save wraps it in the
// stand-alone report prologue. Entries' output trajectories
// (DebugEntry.Traj) are provenance, not identity, and are not encoded.
func (r *Report) AppendReport(dst []byte) []byte {
	var tmp [4]byte
	u32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:], v)
		dst = append(dst, tmp[:]...)
	}
	u32(uint32(r.Total))
	u32(uint32(r.Pruned))
	u32(uint32(len(r.Ranked)))
	for _, c := range r.Ranked {
		u32(uint32(c.Matches))
		u32(uint32(c.Runs))
		dst = wire.AppendEntry(dst, c.Entry)
	}
	return dst
}

// DecodeReport parses a report body produced by AppendReport, returning
// the report and the bytes consumed. Trailing bytes are the caller's:
// an embedding format may continue after the report section.
func DecodeReport(body []byte) (*Report, int, error) {
	if len(body) < 12 {
		return nil, 0, fmt.Errorf("ranking: report body truncated at %d bytes", len(body))
	}
	r := &Report{
		Total:  int(binary.LittleEndian.Uint32(body[0:])),
		Pruned: int(binary.LittleEndian.Uint32(body[4:])),
	}
	count := int(binary.LittleEndian.Uint32(body[8:]))
	off := 12
	for i := 0; i < count; i++ {
		if len(body) < off+8 {
			return nil, 0, fmt.Errorf("ranking: candidate %d truncated", i)
		}
		c := Candidate{
			Matches: int(binary.LittleEndian.Uint32(body[off:])),
			Runs:    int(binary.LittleEndian.Uint32(body[off+4:])),
		}
		e, n, err := wire.DecodeEntry(body[off+8:])
		if err != nil {
			return nil, 0, fmt.Errorf("ranking: candidate %d: %w", i, err)
		}
		c.Entry = e
		off += 8 + n
		r.Ranked = append(r.Ranked, c)
	}
	return r, off, nil
}

// Save writes the report. The full candidate state round-trips:
// LoadReport followed by Resort reproduces any strategy's ordering
// without access to the Correct Set.
func (r *Report) Save(w io.Writer) error {
	body := r.AppendReport(make([]byte, 0, 64+len(r.Ranked)*64))
	out := append([]byte(reportMagic), 0, 0, 0, 0)
	binary.LittleEndian.PutUint16(out[4:], reportVersion)
	out = append(out, body...)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], crc32.ChecksumIEEE(body))
	out = append(out, tmp[:]...)
	_, err := w.Write(out)
	return err
}

// LoadReport reads a report written by Save, verifying the checksum.
func LoadReport(rd io.Reader) (*Report, error) {
	data, err := io.ReadAll(rd)
	if err != nil {
		return nil, err
	}
	if len(data) < 8+12+4 {
		return nil, fmt.Errorf("%w (only %d bytes)", ErrReportMagic, len(data))
	}
	if string(data[:4]) != reportMagic {
		return nil, ErrReportMagic
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != reportVersion {
		return nil, fmt.Errorf("%w %d", ErrReportVersion, v)
	}
	body, sum := data[8:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, ErrReportCRC
	}
	r, off, err := DecodeReport(body)
	if err != nil {
		return nil, err
	}
	if off != len(body) {
		return nil, fmt.Errorf("ranking: %d trailing bytes after report", len(body)-off)
	}
	return r, nil
}
