package ranking

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"act/internal/core"
	"act/internal/deps"
)

func savedReport() *Report {
	return &Report{
		Total:  9,
		Pruned: 4,
		Ranked: []Candidate{
			{Matches: 3, Runs: 5, Entry: core.DebugEntry{
				Seq:    deps.Sequence{{S: 0x10, L: 0x20, Inter: true}, {S: 0x30, L: 0x40}},
				Output: 0.01, At: 77, Mode: core.Testing, Proc: 2}},
			{Matches: 2, Entry: core.DebugEntry{
				Seq:    deps.Sequence{{S: 0x50, L: 0x60}},
				Output: 0.31, At: 12, Mode: core.Training}},
			{Matches: 2, Runs: 1, Entry: core.DebugEntry{
				Seq:    deps.Sequence{{S: 0x70, L: 0x80, Inter: true}},
				Output: 0.12, At: 40, Mode: core.Testing, Proc: 1}},
		},
	}
}

func TestReportSaveLoadRoundTrip(t *testing.T) {
	want := savedReport()
	var buf bytes.Buffer
	if err := want.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestLoadedReportReranks(t *testing.T) {
	rep := savedReport()
	var buf bytes.Buffer
	if err := rep.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got.Resort(OutputOnly)
	for i := 1; i < len(got.Ranked); i++ {
		if got.Ranked[i-1].Entry.Output > got.Ranked[i].Entry.Output {
			t.Fatalf("OutputOnly resort out of order at %d", i)
		}
	}
	got.Resort(MostMatched)
	if got.Ranked[0].Matches != 3 {
		t.Fatalf("MostMatched resort put matches=%d first", got.Ranked[0].Matches)
	}
	got.WeightByRuns()
	if got.Ranked[0].Runs != 5 {
		t.Fatalf("WeightByRuns put runs=%d first", got.Ranked[0].Runs)
	}
}

func TestLoadReportRejectsDamage(t *testing.T) {
	var buf bytes.Buffer
	if err := savedReport().Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := LoadReport(bytes.NewReader(flipped)); err == nil {
		t.Fatal("corrupted body loaded without error")
	}

	if _, err := LoadReport(bytes.NewReader([]byte("ACTX12345678901234567890"))); !errors.Is(err, ErrReportMagic) {
		t.Fatalf("want ErrReportMagic, got %v", err)
	}

	vers := append([]byte(nil), data...)
	vers[4] = 99
	if _, err := LoadReport(bytes.NewReader(vers)); err == nil {
		t.Fatal("future version loaded without error")
	}
}

func TestEmptyReportRoundTrip(t *testing.T) {
	want := &Report{Total: 10, Pruned: 10}
	var buf bytes.Buffer
	if err := want.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != 10 || got.Pruned != 10 || len(got.Ranked) != 0 {
		t.Fatalf("got %+v", got)
	}
}
