package ranking

import "container/heap"

// Streaming top-K selection. A rollup node merging many shard
// aggregates wants the head of the fleet-wide ranking without
// materializing and sorting every surviving candidate: push each
// candidate as it streams out of the merged aggregate and read the best
// K at the end, O(n log k) instead of O(n log n).
//
// The order is exactly the one a full Report produces after
// Resort(strategy) followed by WeightByRuns: cross-run failing-run
// count descending, then the strategy order, then insertion order.
// Stable sorts compose into that lexicographic comparator when applied
// least-significant first, which is what Report does — so TopK's
// output is the full ranking's prefix, a property the tests pin.

// TopK selects the k best candidates from a pushed stream.
type TopK struct {
	k        int
	strategy Strategy
	items    topkHeap
	pushed   uint64 // insertion counter, breaks ties deterministically
}

// NewTopK returns a selector for the k head candidates under the given
// strategy with cross-run weighting (WeightByRuns order). k <= 0
// selects nothing.
func NewTopK(k int, strategy Strategy) *TopK {
	return &TopK{k: k, strategy: strategy}
}

// Push offers one candidate.
func (t *TopK) Push(c Candidate) {
	if t.k <= 0 {
		return
	}
	it := topkItem{c: c, ord: t.pushed}
	t.pushed++
	if len(t.items.its) < t.k {
		t.items.strategy = t.strategy
		heap.Push(&t.items, it)
		return
	}
	// Root is the worst of the current best k; replace it when the new
	// candidate ranks higher.
	if topkBetter(t.strategy, it, t.items.its[0]) {
		t.items.its[0] = it
		heap.Fix(&t.items, 0)
	}
}

// Candidates returns the selected candidates, best first. The selector
// is drained: it can be reused afterwards.
func (t *TopK) Candidates() []Candidate {
	out := make([]Candidate, len(t.items.its))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&t.items).(topkItem).c
	}
	return out
}

// topkBetter reports whether a ranks strictly before b in the composite
// order: runs descending, strategy order, insertion order.
func topkBetter(strategy Strategy, a, b topkItem) bool {
	if a.c.Runs != b.c.Runs {
		return a.c.Runs > b.c.Runs
	}
	if less(strategy, a.c, b.c) {
		return true
	}
	if less(strategy, b.c, a.c) {
		return false
	}
	return a.ord < b.ord
}

type topkItem struct {
	c   Candidate
	ord uint64
}

// topkHeap is a min-heap under the composite order: the root is the
// worst retained candidate, the first to be displaced.
type topkHeap struct {
	its      []topkItem
	strategy Strategy
}

func (h *topkHeap) Len() int           { return len(h.its) }
func (h *topkHeap) Less(i, j int) bool { return topkBetter(h.strategy, h.its[j], h.its[i]) }
func (h *topkHeap) Swap(i, j int)      { h.its[i], h.its[j] = h.its[j], h.its[i] }
func (h *topkHeap) Push(x interface{}) { h.its = append(h.its, x.(topkItem)) }
func (h *topkHeap) Pop() interface{} {
	old := h.its
	n := len(old)
	it := old[n-1]
	h.its = old[:n-1]
	return it
}
