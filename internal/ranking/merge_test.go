package ranking

import (
	"math/rand"
	"testing"

	"act/internal/core"
	"act/internal/deps"
)

// The collector merges Debug Buffers from many independent monitors
// before ranking. These tests pin the algebra that merge relies on:
// ranking the union of two buffers (duplicates collapsed beforehand)
// must equal ranking their concatenation (duplicates collapsed by Rank
// itself), and the merge must be order-insensitive.

// synthEntry builds a deterministic entry for sequence index i.
func synthEntry(i int, output float64) core.DebugEntry {
	base := uint64(0x1000 + 0x40*i)
	return core.DebugEntry{
		Seq: deps.Sequence{
			{S: base, L: base + 4, Inter: i%2 == 0},
			{S: base + 8, L: base + 12},
		},
		Output: output,
		At:     uint64(i),
	}
}

// correctSetOf builds a Correct Set containing sequences 0..n-1.
func correctSetOf(n int) *deps.SeqSet {
	ss := deps.NewSeqSet(2)
	for i := 0; i < n; i++ {
		ss.Add(synthEntry(i, 0).Seq)
	}
	return ss
}

// rankedKeys flattens a report's order for comparison.
func rankedKeys(rep *Report) []string {
	out := make([]string, 0, len(rep.Ranked))
	for _, c := range rep.Ranked {
		out = append(out, c.Entry.Seq.Key())
	}
	return out
}

func sameOrder(t *testing.T, a, b *Report, what string) {
	t.Helper()
	ka, kb := rankedKeys(a), rankedKeys(b)
	if len(ka) != len(kb) {
		t.Fatalf("%s: %d vs %d candidates", what, len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("%s: rank %d differs", what, i+1)
		}
		if a.Ranked[i].Matches != b.Ranked[i].Matches {
			t.Fatalf("%s: rank %d matches %d vs %d", what, i+1, a.Ranked[i].Matches, b.Ranked[i].Matches)
		}
		if a.Ranked[i].Entry.Output != b.Ranked[i].Entry.Output {
			t.Fatalf("%s: rank %d output %v vs %v", what, i+1, a.Ranked[i].Entry.Output, b.Ranked[i].Entry.Output)
		}
	}
}

// unionOf collapses duplicate sequences across buffers the way a
// set-union would, keeping the most negative output per sequence.
func unionOf(buffers ...[]core.DebugEntry) []core.DebugEntry {
	byKey := make(map[string]int)
	var out []core.DebugEntry
	for _, buf := range buffers {
		for _, e := range buf {
			k := e.Seq.Key()
			if i, ok := byKey[k]; ok {
				if e.Output < out[i].Output {
					out[i] = e
				}
				continue
			}
			byKey[k] = len(out)
			out = append(out, e)
		}
	}
	return out
}

func twoMonitorBuffers(rng *rand.Rand) (a, b []core.DebugEntry) {
	// Monitor A logs sequences 0..9, monitor B logs 5..14: overlap in
	// the middle, with per-monitor outputs so duplicate collapse has
	// work to do.
	for i := 0; i < 10; i++ {
		a = append(a, synthEntry(i, 0.05+0.4*rng.Float64()))
	}
	for i := 5; i < 15; i++ {
		b = append(b, synthEntry(i, 0.05+0.4*rng.Float64()))
	}
	return a, b
}

func TestRankUnionEqualsConcatenation(t *testing.T) {
	for _, strategy := range []Strategy{MostMatched, MostMismatched, OutputOnly} {
		rng := rand.New(rand.NewSource(11))
		a, b := twoMonitorBuffers(rng)
		correct := correctSetOf(4) // prunes a prefix of A's entries

		concat := RankWith(append(append([]core.DebugEntry{}, a...), b...), correct, strategy)
		union := RankWith(unionOf(a, b), correct, strategy)
		sameOrder(t, concat, union, strategy.name())

		if concat.Total != len(a)+len(b) {
			t.Fatalf("concat total %d", concat.Total)
		}
		// Union pre-collapsed the duplicates, so only correct-set
		// pruning remains; survivors must agree regardless.
		if len(concat.Ranked) != len(union.Ranked) {
			t.Fatalf("%v: survivors differ", strategy)
		}
	}
}

func TestRankMergeOrderInsensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a, b := twoMonitorBuffers(rng)
	correct := correctSetOf(4)

	ab := RankWith(append(append([]core.DebugEntry{}, a...), b...), correct, MostMatched)
	ba := RankWith(append(append([]core.DebugEntry{}, b...), a...), correct, MostMatched)
	sameOrder(t, ab, ba, "A+B vs B+A")
}

func TestRankMergeThreeMonitors(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	a, b := twoMonitorBuffers(rng)
	var c []core.DebugEntry
	for i := 12; i < 20; i++ {
		c = append(c, synthEntry(i, 0.05+0.4*rng.Float64()))
	}
	correct := correctSetOf(4)

	concat := RankWith(append(append(append([]core.DebugEntry{}, a...), b...), c...), correct, MostMatched)
	union := RankWith(unionOf(a, b, c), correct, MostMatched)
	sameOrder(t, concat, union, "three monitors")

	// Pairwise-then-third must agree too: union is associative.
	staged := RankWith(unionOf(unionOf(a, b), c), correct, MostMatched)
	sameOrder(t, concat, staged, "staged union")
}

// name labels a strategy in test failures.
func (s Strategy) name() string {
	switch s {
	case MostMismatched:
		return "most-mismatched"
	case OutputOnly:
		return "output-only"
	default:
		return "most-matched"
	}
}
