// Package ranking implements ACT's offline postprocessing (Section
// III-D). After a failure, the Debug Buffer contents are pruned against
// a Correct Set of sequences extracted from fresh correct executions —
// the failure itself is never reproduced — and the surviving sequences
// are ranked by how many of their RAW dependences match the Correct Set
// (descending), ties broken by the most negative network output. The
// top-ranked sequence is the most likely root cause.
package ranking

import (
	"fmt"
	"io"
	"sort"

	"act/internal/core"
	"act/internal/deps"
)

// Candidate is one ranked Debug Buffer sequence.
type Candidate struct {
	Entry   core.DebugEntry
	Matches int // matched RAW dependences against the Correct Set
	// Runs counts the distinct failing runs that logged this sequence —
	// filled by fleet aggregation (cross-run ranking); 0 in single-run
	// reports.
	Runs int
}

// Report is the outcome of pruning and ranking.
type Report struct {
	Total  int // debug entries examined
	Pruned int // entries removed (present in the Correct Set, or duplicates)
	Ranked []Candidate
}

// FilterPct returns the percentage of debug entries removed by pruning,
// the paper's "Filter (%)" column.
func (r *Report) FilterPct() float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.Pruned) / float64(r.Total)
}

// Strategy selects the ordering of the surviving candidates.
type Strategy int

// Ranking strategies. MostMatched is the paper's choice (Section III-D):
// the sequence agreeing longest with correct behaviour marks where
// execution left the rails. MostMismatched is the alternative the paper
// argues against (by the time many dependences mismatch, the program has
// long been off the rails), and OutputOnly ranks purely by network
// confidence — both exist for the ablation.
const (
	MostMatched Strategy = iota
	MostMismatched
	OutputOnly
)

// Rank prunes the debug entries against the Correct Set and ranks the
// survivors with the paper's strategy. Duplicate sequences collapse into
// one candidate keeping the most negative output.
func Rank(debug []core.DebugEntry, correct *deps.SeqSet) *Report {
	return RankWith(debug, correct, MostMatched)
}

// RankWith is Rank with an explicit strategy. Duplicate detection keys
// on the sequences' fixed-size FNV-1a hash (Sequence.Hash) rather than
// a materialized string key, so deduplicating a large Debug Buffer
// allocates nothing per entry.
func RankWith(debug []core.DebugEntry, correct *deps.SeqSet, strategy Strategy) *Report {
	rep := &Report{Total: len(debug)}
	byKey := make(map[uint64]*Candidate)
	var order []uint64
	for _, e := range debug {
		if correct.Contains(e.Seq) {
			rep.Pruned++
			continue
		}
		k := e.Seq.Hash()
		if c, ok := byKey[k]; ok {
			rep.Pruned++ // duplicate collapses
			if e.Output < c.Entry.Output {
				c.Entry = e
			}
			continue
		}
		byKey[k] = &Candidate{Entry: e, Matches: correct.MatchCount(e.Seq)}
		order = append(order, k)
	}
	for _, k := range order {
		rep.Ranked = append(rep.Ranked, *byKey[k])
	}
	rep.Resort(strategy)
	return rep
}

// less orders two candidates under a strategy.
func less(strategy Strategy, a, b Candidate) bool {
	switch strategy {
	case MostMismatched:
		if a.Matches != b.Matches {
			return a.Matches < b.Matches
		}
	case OutputOnly:
		// fall through to the output tie-break below
	default: // MostMatched
		if a.Matches != b.Matches {
			return a.Matches > b.Matches
		}
	}
	return a.Entry.Output < b.Entry.Output
}

// Resort reorders the ranked candidates under a (possibly different)
// strategy, using the Matches and Output values already computed — how
// a persisted report is re-ranked without re-deriving the Correct Set.
func (r *Report) Resort(strategy Strategy) {
	sort.SliceStable(r.Ranked, func(i, j int) bool {
		return less(strategy, r.Ranked[i], r.Ranked[j])
	})
}

// WeightByRuns stable-sorts the ranked candidates by their cross-run
// failing-occurrence count, descending, preserving the strategy order
// within equal counts: a sequence logged by many independent failing
// runs but few correct ones is stronger evidence than any single run's
// network output. Single-run reports (all Runs zero) are unaffected.
func (r *Report) WeightByRuns() {
	sort.SliceStable(r.Ranked, func(i, j int) bool {
		return r.Ranked[i].Runs > r.Ranked[j].Runs
	})
}

// RankOf returns the 1-based rank of the first candidate satisfying
// match, or 0 if none does. Experiments use it with a predicate that
// recognizes the known root-cause dependence.
func (r *Report) RankOf(match func(deps.Sequence) bool) int {
	for i, c := range r.Ranked {
		if match(c.Entry.Seq) {
			return i + 1
		}
	}
	return 0
}

// ContainsDep returns a predicate matching sequences whose final
// dependence pairs the given store and load instruction addresses — the
// usual way a known root cause is identified.
func ContainsDep(s, l uint64) func(deps.Sequence) bool {
	return func(seq deps.Sequence) bool {
		for _, d := range seq {
			if d.S == s && d.L == l {
				return true
			}
		}
		return false
	}
}

// EndsWithDep matches sequences whose newest dependence is s→l.
func EndsWithDep(s, l uint64) func(deps.Sequence) bool {
	return func(seq deps.Sequence) bool {
		if len(seq) == 0 {
			return false
		}
		d := seq[len(seq)-1]
		return d.S == s && d.L == l
	}
}

// Write renders the report as a table for programmer inspection.
func (r *Report) Write(w io.Writer, limit int) {
	fmt.Fprintf(w, "debug entries: %d, pruned: %d (%.1f%%), candidates: %d\n",
		r.Total, r.Pruned, r.FilterPct(), len(r.Ranked))
	for i, c := range r.Ranked {
		if limit > 0 && i >= limit {
			fmt.Fprintf(w, "... %d more\n", len(r.Ranked)-limit)
			break
		}
		runs := ""
		if c.Runs > 0 {
			runs = fmt.Sprintf(" runs=%d", c.Runs)
		}
		fmt.Fprintf(w, "%3d. matches=%d output=%.4f%s %s\n", i+1, c.Matches, c.Entry.Output, runs, c.Entry.Seq)
	}
}
