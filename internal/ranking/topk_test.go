package ranking

import (
	"math/rand"
	"testing"

	"act/internal/core"
	"act/internal/deps"
)

// topkCandidates builds a candidate population with colliding runs,
// matches and outputs so every tier of the composite order is
// exercised, including full ties resolved by insertion order.
func topkCandidates(rng *rand.Rand, n int) []Candidate {
	out := make([]Candidate, n)
	for i := range out {
		seq := deps.Sequence{{S: uint64(i) << 4, L: uint64(i)<<4 + 1, Inter: true}}
		out[i] = Candidate{
			Entry:   core.DebugEntry{Seq: seq, Output: float64(-(rng.Intn(4))) / 2},
			Matches: rng.Intn(3),
			Runs:    rng.Intn(3),
		}
	}
	return out
}

// TestTopKMatchesFullRanking: for every strategy, the streaming
// selector's output equals the prefix of the full pipeline — the stable
// Resort(strategy) followed by WeightByRuns that Collector.Report runs.
func TestTopKMatchesFullRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, strategy := range []Strategy{MostMatched, MostMismatched, OutputOnly} {
		for trial := 0; trial < 20; trial++ {
			cands := topkCandidates(rng, 40)

			full := &Report{Ranked: append([]Candidate(nil), cands...)}
			full.Resort(strategy)
			full.WeightByRuns()

			for _, k := range []int{1, 5, 40, 100} {
				sel := NewTopK(k, strategy)
				for _, c := range cands {
					sel.Push(c)
				}
				got := sel.Candidates()
				want := full.Ranked
				if k < len(want) {
					want = want[:k]
				}
				if len(got) != len(want) {
					t.Fatalf("strategy %d k=%d: got %d candidates, want %d", strategy, k, len(got), len(want))
				}
				for i := range got {
					if got[i].Entry.Seq.Hash() != want[i].Entry.Seq.Hash() {
						t.Fatalf("strategy %d k=%d trial %d: rank %d differs:\ngot  %+v\nwant %+v",
							strategy, k, trial, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestTopKZeroAndReuse(t *testing.T) {
	sel := NewTopK(0, MostMatched)
	sel.Push(Candidate{})
	if got := sel.Candidates(); len(got) != 0 {
		t.Fatalf("k=0 selected %d candidates", len(got))
	}
	sel = NewTopK(2, MostMatched)
	for i := 0; i < 5; i++ {
		sel.Push(Candidate{Runs: i})
	}
	if got := sel.Candidates(); len(got) != 2 || got[0].Runs != 4 || got[1].Runs != 3 {
		t.Fatalf("top-2 by runs wrong: %+v", got)
	}
	// Drained by Candidates: the selector starts over.
	sel.Push(Candidate{Runs: 9})
	if got := sel.Candidates(); len(got) != 1 || got[0].Runs != 9 {
		t.Fatalf("reuse after drain wrong: %+v", got)
	}
}
