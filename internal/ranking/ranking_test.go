package ranking

import (
	"strings"
	"testing"

	"act/internal/core"
	"act/internal/deps"
)

func dep(s, l uint64) deps.Dep { return deps.Dep{S: s, L: l} }

func entry(out float64, ds ...deps.Dep) core.DebugEntry {
	return core.DebugEntry{Seq: deps.Sequence(ds), Output: out}
}

// correctSet builds the Section III-D example's Correct Set:
// (A1,A2,A3) and (B1,B2,B3).
func correctSet() *deps.SeqSet {
	ss := deps.NewSeqSet(3)
	ss.Add(deps.Sequence{dep(0xA1, 1), dep(0xA2, 2), dep(0xA3, 3)})
	ss.Add(deps.Sequence{dep(0xB1, 1), dep(0xB2, 2), dep(0xB3, 3)})
	return ss
}

// TestPaperExample reproduces the worked example of Section III-D:
// Debug Buffer = {(A1,A2,A4), (B1,B2,B3), (A1,A5,A6)}. Pruning removes
// (B1,B2,B3); (A1,A2,A4) with 2 matches ranks above (A1,A5,A6) with 1.
func TestPaperExample(t *testing.T) {
	debug := []core.DebugEntry{
		entry(0.3, dep(0xA1, 1), dep(0xA5, 2), dep(0xA6, 3)),
		entry(0.2, dep(0xB1, 1), dep(0xB2, 2), dep(0xB3, 3)),
		entry(0.4, dep(0xA1, 1), dep(0xA2, 2), dep(0xA4, 3)),
	}
	rep := Rank(debug, correctSet())
	if rep.Pruned != 1 {
		t.Fatalf("pruned = %d, want 1 (the fully-matching sequence)", rep.Pruned)
	}
	if len(rep.Ranked) != 2 {
		t.Fatalf("candidates = %d, want 2", len(rep.Ranked))
	}
	if rep.Ranked[0].Matches != 2 || rep.Ranked[0].Entry.Seq[2] != dep(0xA4, 3) {
		t.Fatalf("rank 1 = %+v, want (A1,A2,A4) with 2 matches", rep.Ranked[0])
	}
	if rep.Ranked[1].Matches != 1 {
		t.Fatalf("rank 2 matches = %d, want 1", rep.Ranked[1].Matches)
	}
}

func TestTieBreakByOutput(t *testing.T) {
	// Two candidates with equal matches: the more negative network
	// output (smaller value) ranks first.
	debug := []core.DebugEntry{
		entry(0.45, dep(0xA1, 1), dep(0xC1, 2), dep(0xC2, 3)),
		entry(0.05, dep(0xA1, 1), dep(0xD1, 2), dep(0xD2, 3)),
	}
	rep := Rank(debug, correctSet())
	if rep.Ranked[0].Entry.Output != 0.05 {
		t.Fatalf("rank 1 output = %v, want the most negative (0.05)", rep.Ranked[0].Entry.Output)
	}
}

func TestDuplicatesCollapse(t *testing.T) {
	e := entry(0.3, dep(0xA1, 1), dep(0xA5, 2), dep(0xA6, 3))
	worse := e
	worse.Output = 0.1
	rep := Rank([]core.DebugEntry{e, worse, e}, correctSet())
	if len(rep.Ranked) != 1 {
		t.Fatalf("candidates = %d, want 1 after dedup", len(rep.Ranked))
	}
	if rep.Ranked[0].Entry.Output != 0.1 {
		t.Fatal("dedup must keep the most negative output")
	}
	if rep.Pruned != 2 {
		t.Fatalf("pruned = %d (duplicates)", rep.Pruned)
	}
}

func TestFilterPct(t *testing.T) {
	rep := Rank(nil, correctSet())
	if rep.FilterPct() != 0 {
		t.Fatal("empty report filter pct")
	}
	debug := []core.DebugEntry{
		entry(0.2, dep(0xB1, 1), dep(0xB2, 2), dep(0xB3, 3)),
		entry(0.2, dep(0xA1, 1), dep(0xA5, 2), dep(0xA6, 3)),
	}
	rep = Rank(debug, correctSet())
	if rep.FilterPct() != 50 {
		t.Fatalf("filter = %v%%, want 50", rep.FilterPct())
	}
}

func TestRankOfAndHelpers(t *testing.T) {
	debug := []core.DebugEntry{
		entry(0.4, dep(0xA1, 1), dep(0xA2, 2), dep(0xA4, 3)),
		entry(0.3, dep(0xA1, 1), dep(0xA5, 2), dep(0xA6, 3)),
	}
	rep := Rank(debug, correctSet())
	if r := rep.RankOf(ContainsDep(0xA6, 3)); r != 2 {
		t.Fatalf("ContainsDep rank = %d, want 2", r)
	}
	if r := rep.RankOf(EndsWithDep(0xA4, 3)); r != 1 {
		t.Fatalf("EndsWithDep rank = %d, want 1", r)
	}
	if r := rep.RankOf(ContainsDep(0xFF, 0xFF)); r != 0 {
		t.Fatalf("missing dep rank = %d, want 0", r)
	}
	if EndsWithDep(1, 2)(nil) {
		t.Fatal("EndsWithDep on empty sequence")
	}
}

func TestWriteOutput(t *testing.T) {
	debug := []core.DebugEntry{
		entry(0.4, dep(0xA1, 1), dep(0xA2, 2), dep(0xA4, 3)),
		entry(0.3, dep(0xA1, 1), dep(0xA5, 2), dep(0xA6, 3)),
	}
	rep := Rank(debug, correctSet())
	var sb strings.Builder
	rep.Write(&sb, 1)
	out := sb.String()
	if !strings.Contains(out, "matches=2") || !strings.Contains(out, "1 more") {
		t.Fatalf("report rendering:\n%s", out)
	}
}

func TestRankingStableAcrossRuns(t *testing.T) {
	debug := []core.DebugEntry{
		entry(0.4, dep(0xA1, 1), dep(0xC1, 2), dep(0xC2, 3)),
		entry(0.4, dep(0xA1, 1), dep(0xD1, 2), dep(0xD2, 3)),
		entry(0.4, dep(0xA1, 1), dep(0xE1, 2), dep(0xE2, 3)),
	}
	a := Rank(debug, correctSet())
	b := Rank(debug, correctSet())
	for i := range a.Ranked {
		if a.Ranked[i].Entry.Seq.Key() != b.Ranked[i].Entry.Seq.Key() {
			t.Fatal("unstable ranking across identical inputs")
		}
	}
}

func TestRankWithStrategies(t *testing.T) {
	// A late-diverging root (2 matches) plus a no-match chaos entry with
	// a more negative output: the strategies must order them differently.
	root := entry(0.4, dep(0xA1, 1), dep(0xA2, 2), dep(0xBAD, 3))
	chaos := entry(0.01, dep(0xF1, 1), dep(0xF2, 2), dep(0xF3, 3))
	debug := []core.DebugEntry{chaos, root}
	cs := correctSet()

	first := func(s Strategy) float64 {
		return RankWith(debug, cs, s).Ranked[0].Entry.Output
	}
	if first(MostMatched) != 0.4 {
		t.Error("MostMatched should put the root (2 matches) first")
	}
	if first(MostMismatched) != 0.01 {
		t.Error("MostMismatched should put the chaos (0 matches) first")
	}
	if first(OutputOnly) != 0.01 {
		t.Error("OutputOnly should put the most negative output first")
	}
	// Rank keeps the paper's default.
	if Rank(debug, cs).Ranked[0].Entry.Output != 0.4 {
		t.Error("Rank default must be MostMatched")
	}
}
