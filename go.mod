module act

go 1.22
