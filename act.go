// Package act is the public API of the ACT reproduction: production-run
// software failure diagnosis via adaptive communication tracking, after
// Alam & Muzahid (ISCA 2016).
//
// ACT learns a program's valid sequences of RAW (read-after-write) data
// communications with a small neural network, watches every dependence
// online, logs the suspicious ones, and — after a failure — prunes and
// ranks that log against fresh correct executions to point at the root
// cause, without ever reproducing the failure.
//
// The workflow has four steps:
//
//  1. Collect memory-access traces of correct executions (your
//     instrumentation, or the built-in workloads via cmd/acttrace).
//  2. Train: act.Train picks a network topology and learns the valid
//     dependence sequences — act.Model is what you'd embed in the binary.
//  3. Deploy: act.Deploy attaches a Monitor; feed it every load and
//     store. It classifies each dependence, keeps a Debug Buffer of
//     suspicious sequences, and keeps learning online when its
//     misprediction rate spikes.
//  4. Diagnose: after a failure, act.Diagnose prunes the Debug Buffer
//     against correct-run sequences and ranks the survivors.
//
// The internal packages contain the full substrate the evaluation runs
// on — an ISA and VM, a MESI memory hierarchy, a timing simulator, the
// neural hardware model, benchmark kernels, and sixteen bug workloads;
// see DESIGN.md.
package act

import (
	"fmt"
	"io"
	"sync"

	"act/internal/core"
	"act/internal/deps"
	"act/internal/nn"
	"act/internal/obs"
	"act/internal/ranking"
	"act/internal/trace"
	"act/internal/train"
)

// Re-exported data types. A Record is one retired memory operation; a
// Trace is one execution's ordered records. Dep is one RAW dependence
// (store instruction S observed by load instruction L); a Sequence is
// the N-long dependence window the network classifies.
type (
	Record           = trace.Record
	Trace            = trace.Trace
	Dep              = deps.Dep
	Sequence         = deps.Sequence
	DebugEntry       = core.DebugEntry
	Report           = ranking.Report
	Candidate        = ranking.Candidate
	CorruptionReport = trace.CorruptionReport
)

// ReadTrace reads a binary trace written by Trace.Write (or acttrace).
// Corruption inside a framed trace is recovered silently; use
// ReadTraceReport to see what was lost.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// ReadTraceReport reads a trace and reports any corruption the framed
// reader recovered from: damaged records are skipped, the rest of the
// trace survives, and the report says how much was lost. The report is
// non-nil whenever the trace is.
func ReadTraceReport(r io.Reader) (*Trace, *CorruptionReport, error) {
	return trace.ReadReport(r)
}

// Model is a trained communication-invariant classifier: the network
// topology and weights plus the sequence length it consumes — the
// payload ACT stores in the program binary.
type Model struct {
	res *train.Result
}

// TrainOption adjusts training.
type TrainOption func(*train.Config)

// WithFullSearch searches the paper's full topology space (N 1..5,
// hidden 1..10) instead of the fast default (N 1..3, hidden {4,8,10}).
func WithFullSearch() TrainOption {
	return func(c *train.Config) {
		c.Ns = []int{1, 2, 3, 4, 5}
		c.Hs = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	}
}

// WithGranularity tracks last writers at the given byte granularity
// (8 = per word; a cache-line size models the cheap hardware mode).
func WithGranularity(bytes uint64) TrainOption {
	return func(c *train.Config) { c.Granularity = bytes }
}

// WithSeed fixes the training seed (default 1).
func WithSeed(seed int64) TrainOption {
	return func(c *train.Config) { c.Seed = seed }
}

// WithExclude withholds matching dependences from training, as if the
// code containing them did not exist yet.
func WithExclude(f func(Dep) bool) TrainOption {
	return func(c *train.Config) { c.Exclude = f }
}

// WithNegativeSampling sets how many wrong-writer negatives are
// synthesized per observed sequence (default 1; -1 disables, leaving the
// paper's before-last-store negatives only). Higher values harden the
// only-observed-communication-is-valid boundary — diagnosis-oriented
// deployments use 3 — at some cost in false positives.
func WithNegativeSampling(perSequence int) TrainOption {
	return func(c *train.Config) { c.RandomNegatives = perSequence }
}

// WithoutPrior disables the default-invalid prior (the random invalid
// feature points that make never-observed communication suspect by
// default). Without it, unseen sequences lean toward "valid":
// friendlier to new code, blinder to bugs.
func WithoutPrior() TrainOption {
	return func(c *train.Config) { c.PriorNegatives = -1 }
}

// Train runs offline training: the input generator turns the correct-run
// traces into positive and synthesized negative dependence-sequence
// examples, a topology search scored on the held-out traces picks the
// network, and a thorough final fit trains it.
func Train(trainTraces, testTraces []*Trace, opts ...TrainOption) (*Model, error) {
	cfg := train.Config{Ns: []int{1, 2, 3}, Hs: []int{4, 8, 10}, Seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	res, err := train.Train(trainTraces, testTraces, cfg)
	if err != nil {
		return nil, err
	}
	return &Model{res: res}, nil
}

// Topology returns the chosen network topology as "i-h-1".
func (m *Model) Topology() string { return m.res.Topology() }

// SequenceLength returns N, the dependences per classified sequence.
func (m *Model) SequenceLength() int { return m.res.N }

// FalsePositiveRate returns the held-out misprediction rate on valid
// sequences (dynamic-weighted).
func (m *Model) FalsePositiveRate() float64 { return m.res.Mispred }

// FalseNegativeRate returns the held-out rate of synthesized invalid
// sequences the network accepts.
func (m *Model) FalseNegativeRate() float64 { return m.res.FNRate }

// Save writes the model (sequence length, topology, weights).
func (m *Model) Save(w io.Writer) error {
	blob, err := m.res.Net.MarshalBinary()
	if err != nil {
		return err
	}
	if _, err := w.Write([]byte{byte(m.res.N)}); err != nil {
		return err
	}
	_, err = w.Write(blob)
	return err
}

// LoadModel reads a model written by Save (or acttrain).
func LoadModel(r io.Reader) (*Model, error) {
	blob, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(blob) < 2 {
		return nil, fmt.Errorf("act: model blob too short")
	}
	n := int(blob[0])
	var net nn.Network
	if err := net.UnmarshalBinary(blob[1:]); err != nil {
		return nil, err
	}
	res := &train.Result{Net: &net, N: n, Encoder: deps.EncodeDefault}
	if want := deps.InputLen(deps.EncodeDefault, n); net.NIn != want {
		return nil, fmt.Errorf("act: model expects %d inputs for N=%d, blob has %d", want, n, net.NIn)
	}
	return &Model{res: res}, nil
}

// Monitor is a deployed set of per-processor ACT Modules: it forms
// dependences from the loads and stores you feed it, classifies their
// sequences, logs predicted-invalid ones, and adapts online.
//
// A Monitor is not safe for concurrent use. In the hardware it models,
// events arrive in coherence order over one channel; a software harness
// feeding it from multiple goroutines must recreate that single total
// order externally — guard every OnLoad/OnStore/Replay/DebugBuffer/
// Stats call with one shared sync.Mutex:
//
//	var mu sync.Mutex
//	// in each goroutine:
//	mu.Lock()
//	mon.OnLoad(tid, pc, addr)
//	mu.Unlock()
//
// Sharding events by thread id onto separate unlocked Monitors is NOT
// equivalent: cross-thread dependences — the ones diagnosis exists to
// watch — form between records of different threads, so all threads'
// events must pass through the same Monitor under the same lock.
type Monitor struct {
	tracker *core.Tracker
	ckpt    core.CheckpointConfig

	ckptStatus CheckpointStatus
	ckptErr    error

	metricsOnce sync.Once
	metrics     *obs.Registry
}

// DeployOption adjusts deployment.
type DeployOption func(*deployCfg)

type deployCfg struct {
	tracker core.TrackerConfig
	ckpt    core.CheckpointConfig
}

// CheckpointStatus reports what the last checkpointed replay did:
// whether it resumed, from which record, and how many checkpoint images
// it wrote.
type CheckpointStatus = core.ReplayStatus

// WithThreshold sets the misprediction rate that flips a module into
// online-training mode (default 0.05, Table III).
//
// The zero value means "use the default", so it cannot express "train at
// any rate". Two sentinels cover the ends of the scale: AlwaysTrain
// locks every module in online-training mode regardless of rate, and
// NeverTrain locks them in testing mode (pure detection, weights
// frozen). Any negative rate behaves as AlwaysTrain; any rate above 1 as
// NeverTrain.
func WithThreshold(rate float64) DeployOption {
	return func(c *deployCfg) { c.tracker.Module.MispredThreshold = rate }
}

// Threshold sentinels for WithThreshold. AlwaysTrain keeps modules
// learning online permanently; NeverTrain freezes the deployed weights.
const (
	AlwaysTrain = core.AlwaysTrain
	NeverTrain  = core.NeverTrain
)

// WithRecoveryWindows sets K, the number of consecutive
// stalled-unhealthy rate windows (misprediction above threshold without
// improving, or pinned outputs) before a module's breaker restores its
// last-known-good weight snapshot (default 4). Pass a negative k to
// disable snapshot/rollback entirely. Recoveries are counted in
// Stats().Recoveries.
func WithRecoveryWindows(k int) DeployOption {
	return func(c *deployCfg) { c.tracker.Module.RecoveryWindows = k }
}

// WithDebugBuffer sets the Debug Buffer capacity (default 60).
func WithDebugBuffer(entries int) DeployOption {
	return func(c *deployCfg) { c.tracker.Module.DebugBufSize = entries }
}

// WithCheckInterval sets how many dependences pass between misprediction
// rate checks — the cadence of testing/training mode decisions (default
// 1000).
func WithCheckInterval(deps int) DeployOption {
	return func(c *deployCfg) { c.tracker.Module.CheckInterval = deps }
}

// WithDeployGranularity sets last-writer granularity for the deployed
// extractor (must match training).
func WithDeployGranularity(bytes uint64) DeployOption {
	return func(c *deployCfg) { c.tracker.Granularity = bytes }
}

// WithVerdictCache enables verdict memoization: while a module's
// weights are unchanged, repeated sequences are classified from an LRU
// of previous network outputs keyed by the sequence's hash, instead of
// re-running the network. entries sets the per-module capacity; pass a
// negative value for the default size. The cache is invalidated on
// every weight update, mode switch, and breaker recovery, so cached
// verdicts are always what the network would produce; hits and misses
// appear in Stats. Off by default (the faithful hardware model computes
// every sequence).
func WithVerdictCache(entries int) DeployOption {
	return func(c *deployCfg) { c.tracker.Module.VerdictCache = entries }
}

// WithQuantized enables fixed-point batched classification: each
// module compiles its live float weights into an int16 Q-format kernel
// (the arithmetic nn.Quantize models for the paper's hardware AM) and
// classifies testing-mode dependences in batches through it, serving
// repeated windows from an internal generation-stamped memo. Verdicts
// are the quantized network's outputs — deliberately the hardware
// answer, not the float network's — and every observable (Debug
// Buffer, Stats, ranked reports) is bit-identical between sequential,
// batched, and parallel replay. The kernel is recompiled whenever the
// weights change generation (online training, recovery, rollback,
// LoadWeights) and falls back to float classification while the weight
// state cannot compile. Off by default.
func WithQuantized() DeployOption {
	return func(c *deployCfg) { c.tracker.Module.Quantized = true }
}

// WithCheckpoint enables checkpoint/resume on Replay and
// ReplayParallel: replay state is snapshotted to path every interval
// trace records (0 means a large default) as an atomic, CRC-framed
// checkpoint file, and a later Replay of the same trace on a fresh,
// identically configured Monitor resumes from the last complete
// snapshot instead of starting over — with the ranked report byte-
// identical to an uninterrupted run. A checkpoint from a different
// trace, seed, or configuration is ignored (the replay starts fresh);
// CheckpointStatus says what happened.
func WithCheckpoint(path string, interval int) DeployOption {
	return func(c *deployCfg) {
		c.ckpt = core.CheckpointConfig{Path: path, Interval: interval, Resume: true}
	}
}

// Deploy attaches a Monitor initialized with the model's weights for
// every thread (the augmented-binary semantics: threads unseen at
// training time would start untrained, in online-training mode).
func Deploy(m *Model, threads int, opts ...DeployOption) *Monitor {
	cfg := deployCfg{}
	cfg.tracker.Module.N = m.res.N
	cfg.tracker.Module.Encoder = m.res.Encoder
	for _, o := range opts {
		o(&cfg)
	}
	binary := core.NewWeightBinary(m.res.Net.NIn, m.res.Net.NHidden)
	binary.PatchAll(threads, m.res.Net.Flatten(nil))
	return &Monitor{tracker: core.NewTracker(binary, cfg.tracker), ckpt: cfg.ckpt}
}

// OnStore records a store: thread tid's instruction at pc wrote addr.
func (mo *Monitor) OnStore(tid int, pc, addr uint64) {
	mo.tracker.OnRecord(Record{Tid: uint16(tid), PC: pc, Addr: addr, Store: true})
}

// OnLoad records a load: thread tid's instruction at pc read addr.
func (mo *Monitor) OnLoad(tid int, pc, addr uint64) {
	mo.tracker.OnRecord(Record{Tid: uint16(tid), PC: pc, Addr: addr})
}

// Replay feeds a whole trace through the monitor sequentially,
// checkpointing and resuming per WithCheckpoint.
func (mo *Monitor) Replay(t *Trace) { mo.replay(t, nil) }

// replay routes both replay flavors through the checkpointed engine
// when WithCheckpoint armed it, recording the status for
// CheckpointStatus.
func (mo *Monitor) replay(t *Trace, par *core.ParallelConfig) {
	if mo.ckpt.Path == "" {
		if par != nil {
			mo.tracker.ReplayParallel(t, *par)
		} else {
			mo.tracker.Replay(t)
		}
		return
	}
	mo.ckptStatus, mo.ckptErr = mo.tracker.ReplayCheckpointed(t, par, mo.ckpt)
}

// CheckpointStatus reports what the last checkpointed replay did and
// any checkpoint I/O error it hit (a snapshot that fails to land stops
// the replay — by then the monitor's state is no longer resumable from
// disk). Zero values before the first replay or without WithCheckpoint.
func (mo *Monitor) CheckpointStatus() (CheckpointStatus, error) {
	return mo.ckptStatus, mo.ckptErr
}

// ReplayParallel feeds a whole trace through the monitor with the
// two-stage pipeline: the calling goroutine resolves last writers over
// the globally ordered trace and fans the dependences out per thread,
// and one worker goroutine per module classifies its thread's stream
// concurrently. The Debug Buffer, Stats, and any weights learned online
// are bit-identical to Replay of the same trace; on multi-core hosts it
// is several times faster for multi-threaded traces. It returns once
// every worker has drained. The concurrency lives entirely inside the
// call: the Monitor-wide locking discipline above is unchanged.
// Checkpointing per WithCheckpoint applies here too — the workers are
// quiesced at every snapshot, so a parallel checkpoint captures the
// same state a sequential one would.
func (mo *Monitor) ReplayParallel(t *Trace) {
	mo.replay(t, &core.ParallelConfig{})
}

// DebugBuffer returns every module's logged suspicious sequences,
// oldest first per processor — the log handed to Diagnose after a
// failure.
func (mo *Monitor) DebugBuffer() []DebugEntry { return mo.tracker.DebugBuffers() }

// Stats summarizes the monitor's activity, including the weight
// breaker's counters: Snapshots taken on healthy windows and Recoveries
// performed after divergence (NaN/Inf outputs, pinned outputs, or a
// persistently stalled misprediction rate).
func (mo *Monitor) Stats() core.Stats { return mo.tracker.Stats() }

// StatsSnapshot is Stats for concurrent callers: every counter is read
// atomically under the tracker's module-list lock, so a metrics scraper
// (or any other goroutine) may call it while ReplayParallel is running.
// It is the one exception to the Monitor-wide locking discipline above.
func (mo *Monitor) StatsSnapshot() core.Stats { return mo.tracker.StatsSnapshot() }

// Metrics returns the monitor's observability registry with the
// act_core_* series registered (deps and sequences processed, verdicts,
// mode switches, breaker activity, cache hits). Mount it with
// obs.Handler or obs.StartServer, or render it directly with
// WritePrometheus. The registry is created on first call; scraping it is
// safe concurrently with ReplayParallel (series backed by
// StatsSnapshot), like StatsSnapshot itself.
func (mo *Monitor) Metrics() *obs.Registry {
	mo.metricsOnce.Do(func() {
		mo.metrics = obs.NewRegistry()
		mo.tracker.RegisterMetrics(mo.metrics)
	})
	return mo.metrics
}

// TeachInvalid feeds a known-buggy dependence sequence back to thread
// tid's module as a negative example — the escape hatch for a failure
// that slipped past the network and was root-caused by other means
// (Section III-C). It reports whether the module now rejects it.
func (mo *Monitor) TeachInvalid(tid int, s Sequence) bool {
	return mo.tracker.Module(tid).TeachInvalid(s)
}

// Diagnose runs offline postprocessing: sequences occurring in the
// correct traces form the Correct Set, matching Debug Buffer entries are
// pruned, and the survivors are ranked — most-matched first, most
// negative network output breaking ties. The failure itself is never
// re-executed.
func Diagnose(debug []DebugEntry, correct []*Trace, sequenceLength int) *Report {
	set := deps.CollectSequences(correct, deps.ExtractorConfig{N: sequenceLength})
	return ranking.Rank(debug, set)
}
