package act

import (
	"bytes"
	"sync"
	"testing"

	"act/internal/trace"
	"act/internal/vm"
	"act/internal/workloads"
)

// kernelTraces collects correct-run traces of a kernel through the
// public flow.
func kernelTraces(t *testing.T, name string, n int, base int64) []*Trace {
	t.Helper()
	w, err := workloads.KernelByName(name)
	if err != nil {
		t.Fatal(err)
	}
	var out []*Trace
	for s := base; s < base+int64(n); s++ {
		tr, res := trace.Collect(w.Build(s), w.Sched(s))
		if res.Failed {
			continue
		}
		out = append(out, tr)
	}
	return out
}

func TestTrainDeployDiagnoseRoundTrip(t *testing.T) {
	// The README quickstart flow, against the apache bug program.
	b, err := workloads.BugByName("apache")
	if err != nil {
		t.Fatal(err)
	}
	correct, err := workloads.CollectOutcome(b, false, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	var trainTr, testTr []*Trace
	for i, r := range correct {
		if i < 9 {
			trainTr = append(trainTr, r.Trace)
		} else {
			testTr = append(testTr, r.Trace)
		}
	}
	model, err := Train(trainTr, testTr)
	if err != nil {
		t.Fatal(err)
	}
	if model.SequenceLength() < 1 || model.Topology() == "" {
		t.Fatalf("model: N=%d topo=%q", model.SequenceLength(), model.Topology())
	}

	fails, err := workloads.CollectOutcome(b, true, 1, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	mon := Deploy(model, fails[0].Program.NumThreads())
	mon.Replay(fails[0].Trace)
	debug := mon.DebugBuffer()
	if len(debug) == 0 {
		t.Fatal("nothing logged for a failing run")
	}

	var pruneTr []*Trace
	prune, err := workloads.CollectOutcome(b, false, 10, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range prune {
		pruneTr = append(pruneTr, r.Trace)
	}
	rep := Diagnose(debug, pruneTr, model.SequenceLength())
	match := b.Matcher(fails[0].Program)
	if rank := rep.RankOf(match); rank != 1 {
		t.Fatalf("root cause rank = %d, want 1", rank)
	}
}

func TestModelSaveLoad(t *testing.T) {
	trainTr := kernelTraces(t, "mcf", 8, 0)
	testTr := kernelTraces(t, "mcf", 4, 10_000)
	model, err := Train(trainTr, testTr)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Topology() != model.Topology() || loaded.SequenceLength() != model.SequenceLength() {
		t.Fatalf("loaded %s/N=%d, want %s/N=%d",
			loaded.Topology(), loaded.SequenceLength(), model.Topology(), model.SequenceLength())
	}
	if _, err := LoadModel(bytes.NewReader([]byte{9})); err == nil {
		t.Fatal("truncated model accepted")
	}
}

func TestMonitorManualFeed(t *testing.T) {
	trainTr := kernelTraces(t, "mcf", 8, 0)
	testTr := kernelTraces(t, "mcf", 4, 10_000)
	model, err := Train(trainTr, testTr)
	if err != nil {
		t.Fatal(err)
	}
	mon := Deploy(model, 1, WithDebugBuffer(16))
	// Feed a store/load pair by hand: a wrong-writer dependence should
	// be classified (and very likely flagged).
	mon.OnStore(0, 0xDEAD0000, 0x10000000)
	mon.OnLoad(0, 0xBEEF0000, 0x10000000)
	st := mon.Stats()
	if st.Deps != 1 {
		t.Fatalf("deps = %d, want 1", st.Deps)
	}
}

func TestTrainOptions(t *testing.T) {
	trainTr := kernelTraces(t, "bzip2", 8, 0)
	testTr := kernelTraces(t, "bzip2", 4, 10_000)
	model, err := Train(trainTr, testTr,
		WithSeed(7),
		WithGranularity(64),
		WithExclude(func(d Dep) bool { return false }),
		WithNegativeSampling(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if model.FalsePositiveRate() > 0.2 {
		t.Errorf("FP rate %v high for bzip2 at line granularity", model.FalsePositiveRate())
	}
}

func TestWithoutPriorLeansValid(t *testing.T) {
	// Without the default-invalid prior, sequences the training never
	// saw should be accepted at least as often as with it.
	trainTr := kernelTraces(t, "gcc", 8, 0)
	testTr := kernelTraces(t, "gcc", 4, 10_000)
	strict, err := Train(trainTr, testTr)
	if err != nil {
		t.Fatal(err)
	}
	lax, err := Train(trainTr, testTr, WithoutPrior(), WithNegativeSampling(-1))
	if err != nil {
		t.Fatal(err)
	}
	probe := func(m *Model) int {
		mon := Deploy(m, 1, WithDebugBuffer(256))
		for i := uint64(0); i < 64; i++ {
			mon.OnStore(0, 0xF000_0000+i*8, 0x2000_0000+i*8)
			mon.OnLoad(0, 0xF100_0000+i*8, 0x2000_0000+i*8)
		}
		return int(mon.Stats().PredictedInvalid)
	}
	sf, lf := probe(strict), probe(lax)
	t.Logf("unseen flagged: with prior %d, without %d", sf, lf)
	if lf > sf {
		t.Errorf("prior-less model flagged more unseen sequences (%d > %d)", lf, sf)
	}
}

// TestMonitorSharedMutexFeed drives one Monitor from several goroutines
// using the locking pattern its doc comment prescribes: a single shared
// mutex around every call. Run under -race this validates that the
// pattern is sufficient — the Monitor itself holds no locks.
func TestMonitorSharedMutexFeed(t *testing.T) {
	trainTr := kernelTraces(t, "mcf", 6, 0)
	testTr := kernelTraces(t, "mcf", 3, 10_000)
	model, err := Train(trainTr, testTr)
	if err != nil {
		t.Fatal(err)
	}
	mon := Deploy(model, 4, WithDebugBuffer(64))

	const goroutines, events = 4, 200
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := uint64(0); i < events; i++ {
				addr := 0x3000_0000 + i*8 // shared across threads: cross-thread deps form
				mu.Lock()
				mon.OnStore(tid, 0xA000_0000+uint64(tid)<<16+i, addr)
				mon.OnLoad(tid, 0xB000_0000+uint64(tid)<<16+i, addr)
				if i%50 == 0 {
					_ = mon.Stats()
					_ = mon.DebugBuffer()
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if got := mon.Stats().Deps; got != goroutines*events {
		t.Fatalf("deps = %d, want %d (every load consumes the store preceding it)", got, goroutines*events)
	}
}

// TestThresholdSentinelsPublic checks the sentinel semantics through the
// public API: AlwaysTrain keeps modules training, NeverTrain keeps them
// frozen in testing mode.
func TestThresholdSentinelsPublic(t *testing.T) {
	trainTr := kernelTraces(t, "mcf", 6, 0)
	testTr := kernelTraces(t, "mcf", 3, 10_000)
	model, err := Train(trainTr, testTr)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := workloads.KernelByName("mcf")
	tr, _ := trace.Collect(w.Build(99), vm.SchedConfig{Seed: 99})

	always := Deploy(model, 2, WithThreshold(AlwaysTrain), WithCheckInterval(50))
	always.Replay(tr)
	if always.Stats().TrainingDeps == 0 {
		t.Error("AlwaysTrain monitor never trained")
	}

	never := Deploy(model, 2, WithThreshold(NeverTrain), WithCheckInterval(50))
	never.Replay(tr)
	if st := never.Stats(); st.TrainingDeps != 0 {
		t.Errorf("NeverTrain monitor trained on %d deps", st.TrainingDeps)
	}
}

func TestDeployThresholdOption(t *testing.T) {
	trainTr := kernelTraces(t, "mcf", 6, 0)
	testTr := kernelTraces(t, "mcf", 3, 10_000)
	model, err := Train(trainTr, testTr)
	if err != nil {
		t.Fatal(err)
	}
	mon := Deploy(model, 2, WithThreshold(0.5), WithDebugBuffer(8))
	w, _ := workloads.KernelByName("mcf")
	tr, _ := trace.Collect(w.Build(99), vm.SchedConfig{Seed: 99})
	mon.Replay(tr)
	if mon.Stats().Deps == 0 {
		t.Fatal("monitor saw no dependences")
	}
}
