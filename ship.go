package act

import (
	"sync"
	"time"

	"act/internal/core"
	"act/internal/fleet"
	"act/internal/loader"
	"act/internal/wire"
)

// Fleet shipping: a deployed Monitor's Debug Buffer and statistics can
// be shipped to an actd collector, which merges evidence across the
// whole fleet and ranks sequences seen in many failing runs but few
// correct ones first. See DESIGN.md §9 for the protocol.

// DrainDebugBuffer returns every module's logged suspicious sequences
// (as DebugBuffer does) and clears the buffers, so successive drains
// see only new evidence. This is what fleet shipping uses; a harness
// feeding the Monitor from several goroutines must hold the same lock
// around this call as around OnLoad/OnStore.
func (mo *Monitor) DrainDebugBuffer() []DebugEntry {
	buf := mo.tracker.DebugBuffers()
	mo.tracker.ResetDebug()
	return buf
}

// ShipOption adjusts fleet shipping.
type ShipOption func(*shipCfg)

type shipCfg struct {
	agent fleet.AgentConfig
	mu    sync.Locker
}

// WithShipIdentity names the agent and its current run in shipped
// batches. The run id must be unique per monitored execution of this
// agent — the collector counts evidence per (agent, run).
func WithShipIdentity(name string, run uint64) ShipOption {
	return func(c *shipCfg) { c.agent.Name = name; c.agent.Run = run }
}

// WithShipInterval sets the background drain-and-ship cadence
// (default 2s).
func WithShipInterval(d time.Duration) ShipOption {
	return func(c *shipCfg) { c.agent.Interval = d }
}

// WithShipSpool stores undeliverable batches in the given file and
// replays them when the collector comes back — a collector outage then
// loses nothing.
func WithShipSpool(path string) ShipOption {
	return func(c *shipCfg) { c.agent.SpoolPath = path }
}

// WithShipRetry overrides the per-ship retry policy (default: 4
// attempts, 10ms base delay, 250ms cap).
func WithShipRetry(cfg loader.RetryConfig) ShipOption {
	return func(c *shipCfg) { c.agent.Retry = cfg }
}

// WithShipLock makes the shipper take mu around every drain of the
// Monitor. Pass the same mutex that guards your OnLoad/OnStore calls
// when the Monitor is fed from goroutines.
func WithShipLock(mu sync.Locker) ShipOption {
	return func(c *shipCfg) { c.mu = mu }
}

// Shipper periodically drains a Monitor's Debug Buffer and ships it to
// an actd collector, retrying, spooling, and redelivering as needed;
// delivery is at-least-once and the collector deduplicates.
type Shipper struct {
	agent *fleet.Agent
}

// monitorSource adapts a Monitor to the fleet agent's Source.
type monitorSource struct {
	mon *Monitor
	mu  sync.Locker
}

func (s *monitorSource) Drain() ([]DebugEntry, core.Stats) {
	if s.mu != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	return s.mon.DrainDebugBuffer(), s.mon.Stats()
}

// ShipTo starts shipping mon's evidence to the collector at addr
// (host:port) in the background. Call MarkFailing or MarkCorrect when
// the monitored program's fate is known, and Close on the way out.
func ShipTo(addr string, mon *Monitor, opts ...ShipOption) (*Shipper, error) {
	cfg := shipCfg{}
	cfg.agent.Addr = addr
	for _, o := range opts {
		o(&cfg)
	}
	ag, err := fleet.NewAgent(&monitorSource{mon: mon, mu: cfg.mu}, cfg.agent)
	if err != nil {
		return nil, err
	}
	ag.Start()
	return &Shipper{agent: ag}, nil
}

// MarkFailing labels this run's evidence as coming from a failing
// execution — call it from your crash handler, then Close (or Flush).
func (s *Shipper) MarkFailing() { s.agent.SetOutcome(wire.OutcomeFailing) }

// MarkCorrect labels this run's evidence as coming from a correct
// execution; the collector uses such runs to prune false positives
// fleet-wide.
func (s *Shipper) MarkCorrect() { s.agent.SetOutcome(wire.OutcomeCorrect) }

// Flush drains and ships synchronously, returning the delivery error
// if the collector could not be reached (spooled evidence is not an
// error).
func (s *Shipper) Flush() error { return s.agent.Flush() }

// Close performs a final flush and stops the background loop.
func (s *Shipper) Close() error { return s.agent.Close() }

// ShipStats reports the shipper's activity counters.
func (s *Shipper) ShipStats() fleet.AgentStats { return s.agent.Stats() }
