// Command acttrain runs ACT's offline training: it reads correct-run
// traces, runs the input generator and topology search, and writes the
// chosen network (topology + weights) as the weight blob that deployment
// embeds in the program binary.
//
// Usage:
//
//	acttrain -train 'lu-*.trace' -test 'lu-test-*.trace' -o lu.weights
//	acttrain -workload lu -runs 20 -o lu.weights     # self-collect traces
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"act/internal/bench"
	"act/internal/loader"
	"act/internal/trace"
	"act/internal/train"
	"act/internal/workloads"
)

func main() {
	var (
		trainGlob = flag.String("train", "", "glob of training trace files")
		testGlob  = flag.String("test", "", "glob of held-out trace files")
		workload  = flag.String("workload", "", "self-collect traces from this kernel instead")
		runs      = flag.Int("runs", 20, "with -workload: number of training runs to collect")
		out       = flag.String("o", "", "output weight-blob file (required)")
		full      = flag.Bool("full", false, "paper-scale topology search (1..5 x 1..10)")
		verbose   = flag.Bool("v", false, "print every topology trial")
	)
	flag.Parse()
	if *out == "" {
		fatal(fmt.Errorf("need -o FILE"))
	}

	var trainTr, testTr []*trace.Trace
	var err error
	switch {
	case *workload != "":
		trainTr, testTr, err = selfCollect(*workload, *runs)
	case *trainGlob != "" && *testGlob != "":
		if trainTr, err = readGlob(*trainGlob); err == nil {
			testTr, err = readGlob(*testGlob)
		}
	default:
		err = fmt.Errorf("need -workload, or both -train and -test globs")
	}
	if err != nil {
		fatal(err)
	}

	mode := bench.Quick
	if *full {
		mode = bench.Full
	}
	cfg := modeConfig(mode)
	res, err := train.Train(trainTr, testTr, cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("trained %s: topology %s, %d unique deps, FP %.3f%%, FN %.3f%%\n",
		trainTr[0].Program, res.Topology(), res.UniqueDeps, 100*res.Mispred, 100*res.FNRate)
	if *verbose {
		for _, t := range res.Trials {
			fmt.Printf("  trial N=%d h=%-2d FP=%.4f FN=%.4f (%d epochs)\n", t.N, t.Hidden, t.FP, t.FN, t.Epochs)
		}
	}

	blob, err := res.Net.MarshalBinary()
	if err != nil {
		fatal(err)
	}
	// The blob is prefixed with the sequence length so deployment knows
	// the input grouping: one byte is enough (N <= 5).
	blob = append([]byte{byte(res.N)}, blob...)
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(blob))
}

// modeConfig mirrors the bench package's training scales.
func modeConfig(m bench.Mode) train.Config {
	if m == bench.Full {
		return train.Config{Seed: 1}
	}
	return train.Config{Ns: []int{1, 2, 3}, Hs: []int{4, 8, 10}, Seed: 1}
}

func selfCollect(name string, runs int) (trainTr, testTr []*trace.Trace, err error) {
	w, err := workloads.KernelByName(name)
	if err != nil {
		return nil, nil, err
	}
	for s := int64(0); s < int64(runs); s++ {
		tr, res := trace.Collect(w.Build(s), w.Sched(s))
		if res.Failed {
			continue
		}
		trainTr = append(trainTr, tr)
	}
	for s := int64(10_000); s < int64(10_000+max(4, runs/2)); s++ {
		tr, res := trace.Collect(w.Build(s), w.Sched(s))
		if res.Failed {
			continue
		}
		testTr = append(testTr, tr)
	}
	return trainTr, testTr, nil
}

func readGlob(glob string) ([]*trace.Trace, error) {
	files, err := filepath.Glob(glob)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no files match %q", glob)
	}
	var out []*trace.Trace
	for _, f := range files {
		tr, rep, err := loader.LoadTrace(f, loader.RetryConfig{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		if rep.Corrupt() {
			fmt.Fprintf(os.Stderr, "acttrain: %s: corrupt trace recovered (%s)\n", f, rep)
		}
		out = append(out, tr)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "acttrain:", err)
	os.Exit(1)
}
