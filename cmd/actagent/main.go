// Command actagent replays recorded traces through a deployed monitor
// and ships the resulting Debug Buffers to an actd collector — the
// standalone form of what act.ShipTo does inside an instrumented
// program.
//
// Usage:
//
//	actagent -collector host:7077 -model m.act -outcome failing fail1.trace fail2.trace
//	actagent -collector host:7077 -model m.act -outcome correct -spool /tmp/agent.spool ok.trace
//	actagent -collector host:7077 -model m.act -metrics-listen :9091 ...
//	actagent -collectors shard0=h0:7077,shard1=h1:7077,shard2=h2:7077 -spool /tmp/spools ...
//
// Each trace file is shipped as its own run, so the collector's
// cross-run counting sees one occurrence per file.
//
// With -collectors, batches route to a ring of actd shards by
// consistent hashing of each sequence — a dead shard's traffic fails
// over to its ring successor behind a per-shard circuit breaker, and
// -spool names a directory of per-shard spool files instead of one
// file.
//
// SIGINT/SIGTERM mid-ship routes through a readiness gate that closes
// the in-flight agent first — flushing its queue to the collector or
// the spool — so an interrupted invocation loses no evidence a clean
// exit would have kept.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"act"
	"act/internal/core"
	"act/internal/fleet"
	"act/internal/fleet/shard"
	"act/internal/obs"
	"act/internal/wire"
)

// current is the agent shipping right now, published for the shutdown
// hook: closing it flushes queued batches to the collector or spool.
// currentRouter is its sharded-tier counterpart (-collectors mode).
var (
	current       atomic.Pointer[fleet.Agent]
	currentRouter atomic.Pointer[shard.Router]
)

func main() {
	var (
		collector  = flag.String("collector", "", "actd address (host:port)")
		collectors = flag.String("collectors", "", "comma-separated name=addr actd shards; batches route by sequence hash (overrides -collector)")
		modelPath  = flag.String("model", "", "trained model file (acttrain output); required")
		outcome    = flag.String("outcome", "unknown", "run outcome label: failing, correct, unknown")
		name       = flag.String("name", "", "agent identity in batches; default hostname")
		runBase    = flag.Uint64("run", 0, "base run id; default derived from time")
		spool      = flag.String("spool", "", "spool file — or directory, with -collectors — for batches while a collector is down")
		dialTO     = flag.Duration("dial-timeout", 0, "collector connect timeout (0: the 5s default)")
		metrics    = flag.String("metrics-listen", "", "address to serve /metrics, /healthz and /debug/pprof on (empty disables)")
	)
	flag.Parse()
	if (*collector == "" && *collectors == "") || *modelPath == "" || flag.NArg() == 0 {
		fatal(fmt.Errorf("need -collector ADDR (or -collectors NAME=ADDR,...), -model FILE, and at least one trace file"))
	}
	shards, err := parseCollectors(*collectors)
	if err != nil {
		fatal(err)
	}
	o, err := parseOutcome(*outcome)
	if err != nil {
		fatal(err)
	}
	if *name == "" {
		if h, err := os.Hostname(); err == nil {
			*name = h
		} else {
			*name = "actagent"
		}
	}
	if *runBase == 0 {
		*runBase = uint64(time.Now().UnixNano())
	}

	mf, err := os.Open(*modelPath)
	if err != nil {
		fatal(err)
	}
	model, err := act.LoadModel(mf)
	mf.Close()
	if err != nil {
		fatal(err)
	}

	health := obs.NewHealth()
	health.SetReady("agent", true)
	health.OnShutdown("flush-current", func() {
		// Close is idempotent and flushes queue and spool; evidence
		// the collector cannot take lands on disk when -spool is set.
		if ag := current.Load(); ag != nil {
			if err := ag.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "actagent: shutdown flush:", err)
			}
		}
		if rt := currentRouter.Load(); rt != nil {
			if err := rt.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "actagent: shutdown flush:", err)
			}
		}
	})
	if *metrics != "" {
		reg := obs.NewRegistry()
		reg.GaugeFunc("act_up", "1 while the process is shipping.", func() float64 { return 1 })
		if shards != nil {
			shard.RegisterRouterMetrics(reg, func() *shard.Router { return currentRouter.Load() })
		} else {
			fleet.RegisterAgentMetrics(reg, func() *fleet.Agent { return current.Load() })
		}
		srv, err := obs.StartServer(*metrics, health, reg, obs.Default)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("actagent: metrics on http://%s/metrics\n", srv.Addr())
		defer srv.Close()
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		health.Shutdown()
		os.Exit(130)
	}()

	ship := shipConfig{
		addr: *collector, shards: shards, name: *name,
		spool: *spool, dialTimeout: *dialTO,
	}
	for i, path := range flag.Args() {
		if err := shipTrace(model, path, ship, *runBase+uint64(i), o); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
	}
	health.Shutdown()
}

// shipConfig is the per-invocation transport setup shared by every run.
type shipConfig struct {
	addr        string            // single collector (-collector)
	shards      map[string]string // sharded ring (-collectors), nil in single mode
	name        string
	spool       string // file in single mode, directory in sharded mode
	dialTimeout time.Duration
}

// shipTrace replays one trace through a fresh monitor and ships its
// Debug Buffer as one run — through a single agent, or through the
// shard router when -collectors is set.
func shipTrace(model *act.Model, path string, cfg shipConfig, run uint64, o wire.Outcome) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	tr, rep, err := act.ReadTraceReport(f)
	f.Close()
	if err != nil {
		return err
	}
	if rep.Corrupt() {
		fmt.Fprintf(os.Stderr, "actagent: %s: recovered from corruption: %s\n", path, rep)
	}
	mon := act.Deploy(model, threadsOf(tr))
	mon.Replay(tr)
	src := &monSource{mon: mon}

	if cfg.shards != nil {
		return shipViaRouter(src, path, cfg, run, o)
	}
	ag, err := fleet.NewAgent(src, fleet.AgentConfig{
		Addr: cfg.addr, Name: cfg.name, Run: run,
		SpoolPath: cfg.spool, DialTimeout: cfg.dialTimeout,
	})
	if err != nil {
		return err
	}
	current.Store(ag)
	defer current.CompareAndSwap(ag, nil)
	ag.SetOutcome(o)
	ferr := ag.Flush()
	if cerr := ag.Close(); ferr == nil {
		ferr = cerr
	}
	st := ag.Stats()
	fmt.Printf("actagent: %s: run %d, %d entries drained, %d batch(es) shipped, %d spooled\n",
		path, run, st.Drained, st.Shipped, st.Spooled)
	if ferr != nil && st.Spooled > 0 {
		// The evidence is safe on disk; the next invocation replays it.
		fmt.Fprintln(os.Stderr, "actagent:", ferr)
		return nil
	}
	return ferr
}

// shipViaRouter routes one run's evidence across the shard ring.
func shipViaRouter(src fleet.Source, path string, cfg shipConfig, run uint64, o wire.Outcome) error {
	rt, err := shard.NewRouter(src, shard.RouterConfig{
		Shards: cfg.shards, Name: cfg.name, Run: run,
		SpoolDir: cfg.spool, DialTimeout: cfg.dialTimeout,
	})
	if err != nil {
		return err
	}
	currentRouter.Store(rt)
	defer currentRouter.CompareAndSwap(rt, nil)
	rt.SetOutcome(o)
	ferr := rt.Flush()
	if cerr := rt.Close(); ferr == nil {
		ferr = cerr
	}
	st := rt.Stats()
	fmt.Printf("actagent: %s: run %d, %d entries drained, %d batch(es) shipped across %d shard(s), %d rerouted, %d spooled\n",
		path, run, st.Drained, st.Shipped, rt.Ring().Len(), st.Reroutes, st.Spooled)
	if ferr != nil && st.Spooled > 0 {
		fmt.Fprintln(os.Stderr, "actagent:", ferr)
		return nil
	}
	return ferr
}

// parseCollectors parses the -collectors list: name=addr pairs, comma
// separated. Empty input is the single-collector mode (nil map).
func parseCollectors(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		i := strings.IndexByte(pair, '=')
		if i <= 0 || i == len(pair)-1 {
			return nil, fmt.Errorf("bad -collectors entry %q (want name=addr)", pair)
		}
		out[pair[:i]] = pair[i+1:]
	}
	return out, nil
}

// monSource adapts the replayed monitor to the fleet agent.
type monSource struct{ mon *act.Monitor }

func (s *monSource) Drain() ([]act.DebugEntry, core.Stats) {
	return s.mon.DrainDebugBuffer(), s.mon.Stats()
}

func threadsOf(t *act.Trace) int {
	max := 0
	for _, r := range t.Records {
		if int(r.Tid) > max {
			max = int(r.Tid)
		}
	}
	return max + 1
}

func parseOutcome(s string) (wire.Outcome, error) {
	switch s {
	case "failing":
		return wire.OutcomeFailing, nil
	case "correct":
		return wire.OutcomeCorrect, nil
	case "unknown":
		return wire.OutcomeUnknown, nil
	}
	return 0, fmt.Errorf("unknown outcome %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "actagent:", err)
	os.Exit(1)
}
