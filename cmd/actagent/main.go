// Command actagent replays recorded traces through a deployed monitor
// and ships the resulting Debug Buffers to an actd collector — the
// standalone form of what act.ShipTo does inside an instrumented
// program.
//
// Usage:
//
//	actagent -collector host:7077 -model m.act -outcome failing fail1.trace fail2.trace
//	actagent -collector host:7077 -model m.act -outcome correct -spool /tmp/agent.spool ok.trace
//	actagent -collector host:7077 -model m.act -metrics-listen :9091 ...
//
// Each trace file is shipped as its own run, so the collector's
// cross-run counting sees one occurrence per file.
//
// SIGINT/SIGTERM mid-ship routes through a readiness gate that closes
// the in-flight agent first — flushing its queue to the collector or
// the spool — so an interrupted invocation loses no evidence a clean
// exit would have kept.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"act"
	"act/internal/core"
	"act/internal/fleet"
	"act/internal/obs"
	"act/internal/wire"
)

// current is the agent shipping right now, published for the shutdown
// hook: closing it flushes queued batches to the collector or spool.
var current atomic.Pointer[fleet.Agent]

func main() {
	var (
		collector = flag.String("collector", "", "actd address (host:port); required")
		modelPath = flag.String("model", "", "trained model file (acttrain output); required")
		outcome   = flag.String("outcome", "unknown", "run outcome label: failing, correct, unknown")
		name      = flag.String("name", "", "agent identity in batches; default hostname")
		runBase   = flag.Uint64("run", 0, "base run id; default derived from time")
		spool     = flag.String("spool", "", "spool file for batches while the collector is down")
		metrics   = flag.String("metrics-listen", "", "address to serve /metrics, /healthz and /debug/pprof on (empty disables)")
	)
	flag.Parse()
	if *collector == "" || *modelPath == "" || flag.NArg() == 0 {
		fatal(fmt.Errorf("need -collector ADDR, -model FILE, and at least one trace file"))
	}
	o, err := parseOutcome(*outcome)
	if err != nil {
		fatal(err)
	}
	if *name == "" {
		if h, err := os.Hostname(); err == nil {
			*name = h
		} else {
			*name = "actagent"
		}
	}
	if *runBase == 0 {
		*runBase = uint64(time.Now().UnixNano())
	}

	mf, err := os.Open(*modelPath)
	if err != nil {
		fatal(err)
	}
	model, err := act.LoadModel(mf)
	mf.Close()
	if err != nil {
		fatal(err)
	}

	health := obs.NewHealth()
	health.SetReady("agent", true)
	health.OnShutdown("flush-current", func() {
		if ag := current.Load(); ag != nil {
			// Close is idempotent and flushes queue and spool; evidence
			// the collector cannot take lands on disk when -spool is set.
			if err := ag.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "actagent: shutdown flush:", err)
			}
		}
	})
	if *metrics != "" {
		reg := obs.NewRegistry()
		reg.GaugeFunc("act_up", "1 while the process is shipping.", func() float64 { return 1 })
		fleet.RegisterAgentMetrics(reg, func() *fleet.Agent { return current.Load() })
		srv, err := obs.StartServer(*metrics, health, reg, obs.Default)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("actagent: metrics on http://%s/metrics\n", srv.Addr())
		defer srv.Close()
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		health.Shutdown()
		os.Exit(130)
	}()

	for i, path := range flag.Args() {
		if err := shipTrace(model, path, *collector, *name, *runBase+uint64(i), o, *spool); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
	}
	health.Shutdown()
}

// shipTrace replays one trace through a fresh monitor and ships its
// Debug Buffer as one run.
func shipTrace(model *act.Model, path, addr, name string, run uint64, o wire.Outcome, spool string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	tr, rep, err := act.ReadTraceReport(f)
	f.Close()
	if err != nil {
		return err
	}
	if rep.Corrupt() {
		fmt.Fprintf(os.Stderr, "actagent: %s: recovered from corruption: %s\n", path, rep)
	}
	mon := act.Deploy(model, threadsOf(tr))
	mon.Replay(tr)

	src := &monSource{mon: mon}
	ag, err := fleet.NewAgent(src, fleet.AgentConfig{
		Addr: addr, Name: name, Run: run, SpoolPath: spool,
	})
	if err != nil {
		return err
	}
	current.Store(ag)
	defer current.CompareAndSwap(ag, nil)
	ag.SetOutcome(o)
	ferr := ag.Flush()
	if cerr := ag.Close(); ferr == nil {
		ferr = cerr
	}
	st := ag.Stats()
	fmt.Printf("actagent: %s: run %d, %d entries drained, %d batch(es) shipped, %d spooled\n",
		path, run, st.Drained, st.Shipped, st.Spooled)
	if ferr != nil && st.Spooled > 0 {
		// The evidence is safe on disk; the next invocation replays it.
		fmt.Fprintln(os.Stderr, "actagent:", ferr)
		return nil
	}
	return ferr
}

// monSource adapts the replayed monitor to the fleet agent.
type monSource struct{ mon *act.Monitor }

func (s *monSource) Drain() ([]act.DebugEntry, core.Stats) {
	return s.mon.DrainDebugBuffer(), s.mon.Stats()
}

func threadsOf(t *act.Trace) int {
	max := 0
	for _, r := range t.Records {
		if int(r.Tid) > max {
			max = int(r.Tid)
		}
	}
	return max + 1
}

func parseOutcome(s string) (wire.Outcome, error) {
	switch s {
	case "failing":
		return wire.OutcomeFailing, nil
	case "correct":
		return wire.OutcomeCorrect, nil
	case "unknown":
		return wire.OutcomeUnknown, nil
	}
	return 0, fmt.Errorf("unknown outcome %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "actagent:", err)
	os.Exit(1)
}
