// Command actagent replays recorded traces through a deployed monitor
// and ships the resulting Debug Buffers to an actd collector — the
// standalone form of what act.ShipTo does inside an instrumented
// program.
//
// Usage:
//
//	actagent -collector host:7077 -model m.act -outcome failing fail1.trace fail2.trace
//	actagent -collector host:7077 -model m.act -outcome correct -spool /tmp/agent.spool ok.trace
//
// Each trace file is shipped as its own run, so the collector's
// cross-run counting sees one occurrence per file.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"act"
	"act/internal/core"
	"act/internal/fleet"
	"act/internal/wire"
)

func main() {
	var (
		collector = flag.String("collector", "", "actd address (host:port); required")
		modelPath = flag.String("model", "", "trained model file (acttrain output); required")
		outcome   = flag.String("outcome", "unknown", "run outcome label: failing, correct, unknown")
		name      = flag.String("name", "", "agent identity in batches; default hostname")
		runBase   = flag.Uint64("run", 0, "base run id; default derived from time")
		spool     = flag.String("spool", "", "spool file for batches while the collector is down")
	)
	flag.Parse()
	if *collector == "" || *modelPath == "" || flag.NArg() == 0 {
		fatal(fmt.Errorf("need -collector ADDR, -model FILE, and at least one trace file"))
	}
	o, err := parseOutcome(*outcome)
	if err != nil {
		fatal(err)
	}
	if *name == "" {
		if h, err := os.Hostname(); err == nil {
			*name = h
		} else {
			*name = "actagent"
		}
	}
	if *runBase == 0 {
		*runBase = uint64(time.Now().UnixNano())
	}

	mf, err := os.Open(*modelPath)
	if err != nil {
		fatal(err)
	}
	model, err := act.LoadModel(mf)
	mf.Close()
	if err != nil {
		fatal(err)
	}

	for i, path := range flag.Args() {
		if err := shipTrace(model, path, *collector, *name, *runBase+uint64(i), o, *spool); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
	}
}

// shipTrace replays one trace through a fresh monitor and ships its
// Debug Buffer as one run.
func shipTrace(model *act.Model, path, addr, name string, run uint64, o wire.Outcome, spool string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	tr, rep, err := act.ReadTraceReport(f)
	f.Close()
	if err != nil {
		return err
	}
	if rep.Corrupt() {
		fmt.Fprintf(os.Stderr, "actagent: %s: recovered from corruption: %s\n", path, rep)
	}
	mon := act.Deploy(model, threadsOf(tr))
	mon.Replay(tr)

	src := &monSource{mon: mon}
	ag, err := fleet.NewAgent(src, fleet.AgentConfig{
		Addr: addr, Name: name, Run: run, SpoolPath: spool,
	})
	if err != nil {
		return err
	}
	ag.SetOutcome(o)
	ferr := ag.Flush()
	if cerr := ag.Close(); ferr == nil {
		ferr = cerr
	}
	st := ag.Stats()
	fmt.Printf("actagent: %s: run %d, %d entries drained, %d batch(es) shipped, %d spooled\n",
		path, run, st.Drained, st.Shipped, st.Spooled)
	if ferr != nil && st.Spooled > 0 {
		// The evidence is safe on disk; the next invocation replays it.
		fmt.Fprintln(os.Stderr, "actagent:", ferr)
		return nil
	}
	return ferr
}

// monSource adapts the replayed monitor to the fleet agent.
type monSource struct{ mon *act.Monitor }

func (s *monSource) Drain() ([]act.DebugEntry, core.Stats) {
	return s.mon.DrainDebugBuffer(), s.mon.Stats()
}

func threadsOf(t *act.Trace) int {
	max := 0
	for _, r := range t.Records {
		if int(r.Tid) > max {
			max = int(r.Tid)
		}
	}
	return max + 1
}

func parseOutcome(s string) (wire.Outcome, error) {
	switch s {
	case "failing":
		return wire.OutcomeFailing, nil
	case "correct":
		return wire.OutcomeCorrect, nil
	case "unknown":
		return wire.OutcomeUnknown, nil
	}
	return 0, fmt.Errorf("unknown outcome %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "actagent:", err)
	os.Exit(1)
}
