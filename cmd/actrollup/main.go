// Command actrollup merges shard collector states into one cross-fleet
// ranked report. Shard states come from snapshot files named on the
// command line (the actd -snapshot output), from MsgState frames pushed
// over the wire to -listen (what actd -rollup does on shutdown), or
// both. The report leads with per-shard completeness annotations: with
// K of N shards missing the ranking is still produced, and the header
// says exactly whose evidence is in it.
//
// Usage:
//
//	actrollup shard0=/var/lib/actd0.snap shard1=/var/lib/actd1.snap
//	actrollup -expected shard0,shard1,shard2 /var/lib/*.snap
//	actrollup -listen :7177 -expected shard0,shard1,shard2
//	actrollup -listen :7177 -metrics-listen :9091 -out report.act
//
// With -listen, actrollup accepts pushed states until SIGINT/SIGTERM
// and then prints the merged report; file arguments are merged before
// serving starts. -out additionally saves the ranked report in the
// acttrain binary format. -rca annotates the merged report with
// structured root-cause verdicts (and -rca-out saves them): shapes and
// PC-level sites only, since a rollup node has wire evidence but no
// program symbols.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"act/internal/fleet"
	"act/internal/fleet/shard"
	"act/internal/obs"
	"act/internal/ranking"
	"act/internal/rca"
)

func main() {
	var (
		listen   = flag.String("listen", "", "address to accept pushed shard states on (empty: merge files and exit)")
		metrics  = flag.String("metrics-listen", "", "address to serve /metrics, /healthz and /debug/pprof on (empty disables)")
		expected = flag.String("expected", "", "comma-separated shard names completeness is measured against")
		top      = flag.Int("top", 10, "ranked sequences to print")
		prune    = flag.Int("correct-prune", 1, "correct runs that must log a sequence before it is pruned")
		strategy = flag.String("strategy", "most-matched", "within-run-count order: most-matched, most-mismatched, output")
		out      = flag.String("out", "", "also save the ranked report here (acttrain binary format)")
		rcaFlag  = flag.Bool("rca", false, "annotate the merged report with RCA verdicts")
		rcaPath  = flag.String("rca-out", "", "also save the RCA verdict report here (ACTV format)")
	)
	flag.Parse()

	strat, err := parseStrategy(*strategy)
	if err != nil {
		fatal(err)
	}
	var exp []string
	if *expected != "" {
		for _, n := range strings.Split(*expected, ",") {
			exp = append(exp, strings.TrimSpace(n))
		}
	}
	ru := shard.NewRollup(shard.RollupConfig{
		Collector: fleet.CollectorConfig{CorrectPrune: *prune, Strategy: strat},
		Expected:  exp,
	})

	// File arguments merge first, so a push for the same shard (which the
	// merge makes idempotent) can only add evidence, never lose it.
	for _, arg := range flag.Args() {
		name, path := splitArg(arg)
		state, err := os.ReadFile(path)
		if err != nil {
			ru.MarkUnreachable(name, err.Error())
			fmt.Fprintf(os.Stderr, "actrollup: %s: %v\n", name, err)
			continue
		}
		if err := ru.AddState(name, state); err != nil {
			fmt.Fprintf(os.Stderr, "actrollup: %v\n", err)
		}
	}
	if *listen == "" && flag.NArg() == 0 {
		fatal(fmt.Errorf("nothing to do: name snapshot files or set -listen (try -h)"))
	}

	if *listen != "" {
		serveUntilSignal(ru, *listen, *metrics)
	}

	rep := ru.Report()
	printRollup(os.Stdout, rep, *top)
	if *rcaFlag || *rcaPath != "" {
		// Fleet verdicts work from wire evidence alone: no program
		// provenance, so sites stay at the PC level and lock adjacency
		// is unknown — still enough to separate defect shapes and rank
		// components across the fleet.
		verdicts := rca.Analyze(rep.Report, rca.Provenance{Bug: "fleet", Limit: *top})
		if *rcaFlag {
			fmt.Println()
			verdicts.Write(os.Stdout, *top)
		}
		if *rcaPath != "" {
			if err := saveRCA(verdicts, *rcaPath); err != nil {
				fatal(err)
			}
			fmt.Printf("actrollup: rca report saved to %s\n", *rcaPath)
		}
	}
	if *out != "" {
		if err := saveReport(rep.Report, *out); err != nil {
			fatal(err)
		}
		fmt.Printf("actrollup: report saved to %s\n", *out)
	}
	if rep.Completeness < 1 {
		os.Exit(3) // degraded: report produced, but evidence is missing
	}
}

// serveUntilSignal accepts pushed shard states until SIGINT/SIGTERM or
// a fatal accept error, with the same readiness-gated shutdown order as
// actd: /healthz flips first, then the listener stops.
func serveUntilSignal(ru *shard.Rollup, listen, metrics string) {
	health := obs.NewHealth()
	health.SetReady("rollup", false)

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("actrollup: listening on %s\n", ln.Addr())

	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := ru.Serve(ln); err != nil {
			fmt.Fprintln(os.Stderr, "actrollup: serve:", err)
		}
	}()
	health.OnShutdown("serve-stop", func() {
		ru.Shutdown()
		<-done
	})
	health.SetReady("rollup", true)

	if metrics != "" {
		reg := obs.NewRegistry()
		ru.RegisterMetrics(reg)
		reg.GaugeFunc("act_up", "1 while the process is serving.", func() float64 { return 1 })
		srv, err := obs.StartServer(metrics, health, reg, obs.Default)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("actrollup: metrics on http://%s/metrics\n", srv.Addr())
		defer srv.Close()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
	case <-done:
	}
	health.Shutdown()
}

// printRollup writes the completeness header and the ranked report.
func printRollup(w *os.File, rep *shard.RollupReport, top int) {
	merged := 0
	for _, s := range rep.Shards {
		if s.Merged {
			merged++
		}
	}
	fmt.Fprintf(w, "rollup: %d/%d shards merged (completeness %.2f)\n",
		merged, len(rep.Shards), rep.Completeness)
	for _, s := range rep.Shards {
		if s.Merged {
			fmt.Fprintf(w, "  %-16s merged   %d batches, %d sequences, %d runs\n",
				s.Name, s.Batches, s.Sequences, s.Runs)
		} else {
			fmt.Fprintf(w, "  %-16s MISSING  %s\n", s.Name, s.Err)
		}
	}
	rep.Report.Write(w, top)
}

func saveReport(rep *ranking.Report, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func saveRCA(rep *rca.Report, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// splitArg parses a "name=path" shard-state argument; a bare path names
// the shard after its file (base name, extension stripped).
func splitArg(arg string) (name, path string) {
	if i := strings.IndexByte(arg, '='); i > 0 {
		return arg[:i], arg[i+1:]
	}
	base := filepath.Base(arg)
	return strings.TrimSuffix(base, filepath.Ext(base)), arg
}

func parseStrategy(s string) (ranking.Strategy, error) {
	switch s {
	case "most-matched":
		return ranking.MostMatched, nil
	case "most-mismatched":
		return ranking.MostMismatched, nil
	case "output":
		return ranking.OutputOnly, nil
	}
	return 0, fmt.Errorf("unknown strategy %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "actrollup:", err)
	os.Exit(1)
}
