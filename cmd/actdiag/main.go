// Command actdiag runs ACT's end-to-end diagnosis on one of the bug
// programs: offline training on correct runs, deployment, a production
// failure, and offline postprocessing that prunes and ranks the Debug
// Buffer. The failure is never reproduced.
//
// Usage:
//
//	actdiag -bug apache
//	actdiag -bug injected-lu -newcode     # Table VI: train without the new function
//	actdiag -bug mysql1 -report 10        # show the top 10 ranked sequences
//	actdiag -bug apache -rca              # structured root-cause verdicts
//	actdiag -bug apache -json             # machine-readable outcome on stdout
//	actdiag -bug apache -save apache.rank # persist the ranked report
//	actdiag -bug apache -rca-out apache.rca # persist the verdict report
//	actdiag -load apache.rank -strategy output   # re-rank a saved report
//	actdiag -bug apache -ckpt apache.ckpt -resume # checkpointed replay, resumable
//
// The exit code gates campaigns: 0 when the root cause ranked, 2 when
// diagnosis completed without finding it, 1 on errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"act/internal/core"
	"act/internal/diagnose"
	"act/internal/nn"
	"act/internal/ranking"
	"act/internal/rca"
	"act/internal/train"
	"act/internal/workloads"
)

func main() {
	var (
		bugName  = flag.String("bug", "", "bug program to diagnose (see acttrace -list)")
		newcode  = flag.Bool("newcode", false, "for injected bugs: withhold the injected function from training")
		report   = flag.Int("report", 5, "ranked sequences to print")
		full     = flag.Bool("full", false, "paper-scale training budgets")
		jsonOut  = flag.Bool("json", false, "print the outcome as JSON instead of text")
		rcaOut   = flag.Bool("rca", false, "print the structured RCA verdicts after the ranking")
		rcaPath  = flag.String("rca-out", "", "write the RCA verdict report to this file")
		savePath = flag.String("save", "", "write the ranked report to this file")
		loadPath = flag.String("load", "", "re-rank a saved report instead of running diagnosis")
		strategy = flag.String("strategy", "", "with -load: most-matched, most-mismatched, or output")
		ckptPath = flag.String("ckpt", "", "checkpoint the failing trace's replay to this file")
		ckptIvl  = flag.Int("ckpt-interval", 0, "records between checkpoints (0 = default)")
		resume   = flag.Bool("resume", false, "with -ckpt: resume from the checkpoint file if it matches")
	)
	flag.Parse()
	if *loadPath != "" {
		if err := rerank(*loadPath, *strategy, *report); err != nil {
			fatal(err)
		}
		return
	}
	if *bugName == "" {
		fatal(fmt.Errorf("need -bug NAME (or -load FILE)"))
	}

	b, err := workloads.BugByName(*bugName)
	if err != nil {
		fatal(err)
	}
	cfg := diagnose.Config{TrainRuns: 10, TestRuns: 4, CorrectSetRuns: 15, FailSeedBase: 100_000}
	if *ckptPath != "" {
		cfg.Checkpoint = core.CheckpointConfig{Path: *ckptPath, Interval: *ckptIvl, Resume: *resume}
	} else if *resume {
		fatal(fmt.Errorf("-resume needs -ckpt FILE"))
	}
	// Diagnosis always searches N >= 2: a single-dependence sequence
	// cannot carry the context the atomicity-violation signatures live
	// in.
	if *full {
		cfg.Train = train.Config{
			Ns: []int{2, 3, 4, 5}, Seed: 1,
			RandomNegatives: 3,
		}
	} else {
		cfg.Train = train.Config{
			Ns: []int{2, 3}, Hs: []int{6, 10}, Seed: 1,
			RandomNegatives: 3,
			SearchFit:       nn.FitConfig{MaxEpochs: 400, Seed: 1},
			FinalFit:        nn.FitConfig{MaxEpochs: 6000, Seed: 1, Patience: 800},
		}
	}
	if *newcode {
		ib, err := workloads.InjectedBugByName(kernelOf(*bugName))
		if err != nil {
			fatal(err)
		}
		p, _ := ib.Gen(0)
		cfg.Exclude = ib.NewCodeFilter(p)
		b = ib.Bug
	}

	out, err := diagnose.Diagnose(b, cfg)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		printJSON(out, cfg)
	} else {
		fmt.Printf("bug:            %s (%s, %s)\n", b.Name, b.Desc, b.Status)
		fmt.Printf("trained:        topology %s on %d correct runs (FP %.3f%%)\n",
			out.Training.Topology(), cfg.TrainRuns, 100*out.Training.Mispred)
		fmt.Printf("failure:        seed %d (analyzed %d production failure(s))\n",
			out.FailSeed, out.FailuresTried)
		if out.Replay.Resumed {
			what := "replay state"
			if out.StageResumed {
				what = "ranked report and RCA verdicts"
			}
			fmt.Printf("checkpoint:     resumed %s from record %d\n", what, out.Replay.ResumedFrom)
		} else if out.Replay.Checkpoints > 0 {
			fmt.Printf("checkpoint:     %d image(s) written\n", out.Replay.Checkpoints)
		}
		fmt.Printf("debug buffer:   %d entries; root cause at position %d (newest first)\n",
			out.DebugLen, out.DebugPos)
		fmt.Printf("postprocessing: pruned %.0f%%, %d candidates remain\n",
			out.FilterPct, out.Candidates)
		if out.Rank > 0 {
			fmt.Printf("diagnosis:      root cause ranked #%d\n", out.Rank)
		} else {
			fmt.Printf("diagnosis:      root cause NOT found\n")
		}
		fmt.Println()
		out.Report.Write(os.Stdout, *report)
		if *rcaOut {
			fmt.Println()
			out.RCA.Write(os.Stdout, *report)
		}
	}
	if *savePath != "" {
		if err := saveReport(out.Report, *savePath); err != nil {
			fatal(err)
		}
		note(*jsonOut, "report saved to %s", *savePath)
	}
	if *rcaPath != "" {
		if err := saveRCA(out.RCA, *rcaPath); err != nil {
			fatal(err)
		}
		note(*jsonOut, "rca report saved to %s", *rcaPath)
	}
	if out.Rank == 0 {
		os.Exit(2)
	}
}

// outcomeJSON is the machine-readable shape of a diagnosis, stable for
// campaign tooling; rca carries the full verdict report.
type outcomeJSON struct {
	Bug           string      `json:"bug"`
	Class         string      `json:"class"`
	Status        string      `json:"status"`
	Topology      string      `json:"topology"`
	Mispred       float64     `json:"mispred"`
	FailSeed      int64       `json:"fail_seed"`
	FailuresTried int         `json:"failures_tried"`
	DebugLen      int         `json:"debug_len"`
	DebugPos      int         `json:"debug_pos"`
	FilterPct     float64     `json:"filter_pct"`
	Candidates    int         `json:"candidates"`
	Rank          int         `json:"rank"`
	Found         bool        `json:"found"`
	Resumed       bool        `json:"resumed,omitempty"`
	ResumedFrom   int         `json:"resumed_from,omitempty"`
	Checkpoints   int         `json:"checkpoints,omitempty"`
	StageResumed  bool        `json:"stage_resumed,omitempty"`
	RCA           *rca.Report `json:"rca,omitempty"`
}

func printJSON(out *diagnose.Outcome, cfg diagnose.Config) {
	doc := outcomeJSON{
		Bug:           out.Bug.Name,
		Class:         out.Bug.Class,
		Status:        out.Bug.Status,
		Topology:      out.Training.Topology(),
		Mispred:       out.Training.Mispred,
		FailSeed:      out.FailSeed,
		FailuresTried: out.FailuresTried,
		DebugLen:      out.DebugLen,
		DebugPos:      out.DebugPos,
		FilterPct:     out.FilterPct,
		Candidates:    out.Candidates,
		Rank:          out.Rank,
		Found:         out.Rank > 0,
		Resumed:       out.Replay.Resumed,
		ResumedFrom:   out.Replay.ResumedFrom,
		Checkpoints:   out.Replay.Checkpoints,
		StageResumed:  out.StageResumed,
		RCA:           out.RCA,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(data))
}

// note prints progress text, diverted to stderr in -json mode so stdout
// stays a single parseable document.
func note(jsonMode bool, format string, args ...any) {
	w := os.Stdout
	if jsonMode {
		w = os.Stderr
	}
	fmt.Fprintf(w, format+"\n", args...)
}

// saveRCA persists the verdict report in the ACTV format.
func saveRCA(rep *rca.Report, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// saveReport persists the ranked report for later re-ranking.
func saveReport(rep *ranking.Report, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// rerank loads a saved report and reorders it under the given strategy,
// using the matches and outputs computed at diagnosis time.
func rerank(path, strategy string, limit int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rep, err := ranking.LoadReport(f)
	if err != nil {
		return err
	}
	switch strategy {
	case "":
		// keep the saved order
	case "most-matched":
		rep.Resort(ranking.MostMatched)
	case "most-mismatched":
		rep.Resort(ranking.MostMismatched)
	case "output":
		rep.Resort(ranking.OutputOnly)
	default:
		return fmt.Errorf("unknown strategy %q", strategy)
	}
	rep.WeightByRuns()
	rep.Write(os.Stdout, limit)
	return nil
}

// kernelOf maps "injected-lu" to "lu".
func kernelOf(name string) string {
	const p = "injected-"
	if len(name) > len(p) && name[:len(p)] == p {
		return name[len(p):]
	}
	return name
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "actdiag:", err)
	os.Exit(1)
}
