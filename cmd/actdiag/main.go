// Command actdiag runs ACT's end-to-end diagnosis on one of the bug
// programs: offline training on correct runs, deployment, a production
// failure, and offline postprocessing that prunes and ranks the Debug
// Buffer. The failure is never reproduced.
//
// Usage:
//
//	actdiag -bug apache
//	actdiag -bug injected-lu -newcode     # Table VI: train without the new function
//	actdiag -bug mysql1 -report 10        # show the top 10 ranked sequences
package main

import (
	"flag"
	"fmt"
	"os"

	"act/internal/diagnose"
	"act/internal/nn"
	"act/internal/train"
	"act/internal/workloads"
)

func main() {
	var (
		bugName = flag.String("bug", "", "bug program to diagnose (see acttrace -list)")
		newcode = flag.Bool("newcode", false, "for injected bugs: withhold the injected function from training")
		report  = flag.Int("report", 5, "ranked sequences to print")
		full    = flag.Bool("full", false, "paper-scale training budgets")
	)
	flag.Parse()
	if *bugName == "" {
		fatal(fmt.Errorf("need -bug NAME"))
	}

	b, err := workloads.BugByName(*bugName)
	if err != nil {
		fatal(err)
	}
	cfg := diagnose.Config{TrainRuns: 10, TestRuns: 4, CorrectSetRuns: 15, FailSeedBase: 100_000}
	// Diagnosis always searches N >= 2: a single-dependence sequence
	// cannot carry the context the atomicity-violation signatures live
	// in.
	if *full {
		cfg.Train = train.Config{
			Ns: []int{2, 3, 4, 5}, Seed: 1,
			RandomNegatives: 3,
		}
	} else {
		cfg.Train = train.Config{
			Ns: []int{2, 3}, Hs: []int{6, 10}, Seed: 1,
			RandomNegatives: 3,
			SearchFit:       nn.FitConfig{MaxEpochs: 400, Seed: 1},
			FinalFit:        nn.FitConfig{MaxEpochs: 6000, Seed: 1, Patience: 800},
		}
	}
	if *newcode {
		ib, err := workloads.InjectedBugByName(kernelOf(*bugName))
		if err != nil {
			fatal(err)
		}
		p, _ := ib.Gen(0)
		cfg.Exclude = ib.NewCodeFilter(p)
		b = ib.Bug
	}

	out, err := diagnose.Diagnose(b, cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("bug:            %s (%s, %s)\n", b.Name, b.Desc, b.Status)
	fmt.Printf("trained:        topology %s on %d correct runs (FP %.3f%%)\n",
		out.Training.Topology(), cfg.TrainRuns, 100*out.Training.Mispred)
	fmt.Printf("failure:        seed %d (analyzed %d production failure(s))\n",
		out.FailSeed, out.FailuresTried)
	fmt.Printf("debug buffer:   %d entries; root cause at position %d (newest first)\n",
		out.DebugLen, out.DebugPos)
	fmt.Printf("postprocessing: pruned %.0f%%, %d candidates remain\n",
		out.FilterPct, out.Candidates)
	if out.Rank > 0 {
		fmt.Printf("diagnosis:      root cause ranked #%d\n", out.Rank)
	} else {
		fmt.Printf("diagnosis:      root cause NOT found\n")
	}
	fmt.Println()
	out.Report.Write(os.Stdout, *report)
	if out.Rank == 0 {
		os.Exit(2)
	}
}

// kernelOf maps "injected-lu" to "lu".
func kernelOf(name string) string {
	const p = "injected-"
	if len(name) > len(p) && name[:len(p)] == p {
		return name[len(p):]
	}
	return name
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "actdiag:", err)
	os.Exit(1)
}
