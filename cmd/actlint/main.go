// Command actlint runs the project's static-analysis passes over the
// module and exits non-zero if any invariant is violated. It is the
// CI gate for the annotations documented in internal/analysis: the
// zero-allocation hot path (//act:noalloc, proven transitively
// through the call graph), the mutex discipline (// guarded by mu),
// exhaustive switches over project enums (//act:exhaustive),
// atomic/plain access mixing, lock-acquisition-order cycles and
// blocking-while-holding hazards (lockorder), and goroutine
// termination in //act:goleak packages (goleak).
//
// Usage:
//
//	go run ./cmd/actlint ./...
//	go run ./cmd/actlint ./internal/core ./internal/fleet
//
// With no arguments it checks ./... relative to the current module.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"act/internal/analysis"
	"act/internal/analysis/atomicmix"
	"act/internal/analysis/exhaustive"
	"act/internal/analysis/goleak"
	"act/internal/analysis/guardedby"
	"act/internal/analysis/lockorder"
	"act/internal/analysis/noalloc"
)

var analyzers = []*analysis.Analyzer{
	noalloc.Analyzer,
	guardedby.Analyzer,
	exhaustive.Analyzer,
	atomicmix.Analyzer,
	lockorder.Analyzer,
	goleak.Analyzer,
}

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	modDir, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "actlint: %v\n", err)
		os.Exit(2)
	}

	prog, err := analysis.Load(modDir, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "actlint: %v\n", err)
		os.Exit(2)
	}

	diags, err := prog.Run(analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "actlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
