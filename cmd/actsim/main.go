// Command actsim runs a workload on the simulated multicore of Table III
// with per-core ACT Modules and reports cycles, IPC, memory behaviour,
// module activity, and the execution overhead against the baseline
// machine without ACT.
//
// Usage:
//
//	actsim -workload lu -seed 1
//	actsim -workload mcf -muladd 10 -fifo 16
//	actsim -bug ptx -seed 0          # a failing input under the timing model
package main

import (
	"flag"
	"fmt"
	"os"

	"act/internal/core"
	"act/internal/mem"
	"act/internal/nnhw"
	"act/internal/program"
	"act/internal/sim"
	"act/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "kernel to simulate")
		bug      = flag.String("bug", "", "bug program to simulate instead")
		seed     = flag.Int64("seed", 1, "input/interleaving seed")
		muladd   = flag.Int("muladd", 1, "multiply-add units per neuron (1, 2, 5, 10)")
		fifo     = flag.Int("fifo", 8, "NN input FIFO entries (4, 8, 16)")
		line     = flag.Int("line", 64, "cache line size in bytes")
		trained  = flag.Bool("trained", true, "deploy with converged weights (false: online training from scratch)")
		migrate  = flag.Int64("migrate", 0, "rotate threads across cores every N cycles (0 = off)")
		noact    = flag.Bool("baseline", false, "simulate without ACT only")
	)
	flag.Parse()

	p, err := buildProgram(*workload, *bug, *seed)
	if err != nil {
		fatal(err)
	}

	cfg := sim.Config{
		Mem:          mem.Config{LineSize: *line},
		NNHW:         nnhw.Config{MulAddUnits: *muladd, FIFODepth: *fifo},
		MigrateEvery: *migrate,
	}
	if *trained {
		cfg.Binary = core.AlwaysValidBinary(6, 10, p.NumThreads())
	}

	if *noact {
		res, err := sim.Run(p, cfg)
		if err != nil {
			fatal(err)
		}
		printRun("baseline", res)
		return
	}

	ov, base, act, err := sim.Overhead(p, cfg)
	if err != nil {
		fatal(err)
	}
	printRun("baseline", base)
	printRun("with ACT", act)
	fmt.Printf("\noverhead: %.2f%%\n", 100*ov)
}

func buildProgram(workload, bug string, seed int64) (*program.Program, error) {
	switch {
	case workload != "":
		w, err := workloads.KernelByName(workload)
		if err != nil {
			return nil, err
		}
		return w.Build(seed), nil
	case bug != "":
		b, err := workloads.BugByName(bug)
		if err != nil {
			return nil, err
		}
		p, _ := b.Gen(seed)
		return p, nil
	default:
		return nil, fmt.Errorf("need -workload or -bug")
	}
}

func printRun(label string, r *sim.Result) {
	fmt.Printf("%s:\n", label)
	fmt.Printf("  cycles        %d\n", r.Cycles)
	fmt.Printf("  instructions  %d (IPC %.2f)\n", r.Instructions, r.IPC())
	fmt.Printf("  memory        L1 %d, L2 %d, remote %d, memory %d\n",
		r.Mem.L1Hits, r.Mem.L2Hits, r.Mem.RemoteHits, r.Mem.MemFills)
	if r.Module.Deps > 0 {
		fmt.Printf("  ACT           %d deps, %d flagged invalid, %d mode switches\n",
			r.Module.Deps, r.Module.PredictedInvalid, r.Module.ModeSwitches)
		fmt.Printf("  NN pipeline   %d accepted, %d FIFO-full rejections\n",
			r.Pipe.Accepted, r.Pipe.Rejected)
	}
	if r.Migrations > 0 {
		fmt.Printf("  migrations    %d\n", r.Migrations)
	}
	if r.Failed {
		fmt.Printf("  FAILED: %s\n", r.FailReason)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "actsim:", err)
	os.Exit(1)
}
