// Command actd is the fleet collector daemon: it listens for actagent
// (or act.ShipTo) connections, merges Debug Buffer batches from the
// whole fleet with dedup and cross-run occurrence counting, and prints
// the ranked report — sequences seen in many failing runs but few
// correct ones first.
//
// Usage:
//
//	actd -listen :7077
//	actd -listen :7077 -snapshot /var/lib/actd.snap -snapshot-every 30s
//	actd -listen :7077 -metrics-listen :9090
//	actd -listen :7077 -shard shard0 -rollup rollup.host:7177
//
// With -metrics-listen, actd serves /metrics (Prometheus text format),
// /healthz, and /debug/pprof on the given address.
//
// As one shard of a sharded tier (agents running with -collectors),
// -rollup names an actrollup node: the collector's exported state is
// pushed there on shutdown, so the cross-fleet report survives the
// shard. The merge is idempotent — re-pushing after a restart cannot
// double-count evidence.
//
// Shutdown — SIGINT/SIGTERM, or the serve loop dying — routes through a
// shared readiness gate: /healthz flips to 503 first, the listener
// stops, the state is snapshotted (when -snapshot is set), and the
// final ranked report is printed. A serve failure therefore exits with
// the same clean drain instead of hanging.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"act/internal/fleet"
	"act/internal/fleet/shard"
	"act/internal/obs"
	"act/internal/ranking"
)

func main() {
	var (
		listen   = flag.String("listen", ":7077", "address to accept agent connections on")
		metrics  = flag.String("metrics-listen", "", "address to serve /metrics, /healthz and /debug/pprof on (empty disables)")
		snapshot = flag.String("snapshot", "", "snapshot file for state across restarts")
		every    = flag.Duration("snapshot-every", time.Minute, "periodic snapshot interval (with -snapshot)")
		top      = flag.Int("top", 10, "ranked sequences to print")
		prune    = flag.Int("correct-prune", 1, "correct runs that must log a sequence before it is pruned")
		strategy = flag.String("strategy", "most-matched", "within-run-count order: most-matched, most-mismatched, output")
		rollup   = flag.String("rollup", "", "actrollup address to push the collector state to on shutdown")
		shardID  = flag.String("shard", "", "shard name reported to the rollup (default: the listen address)")
	)
	flag.Parse()

	strat, err := parseStrategy(*strategy)
	if err != nil {
		fatal(err)
	}
	c := fleet.NewCollector(fleet.CollectorConfig{
		SnapshotPath: *snapshot,
		CorrectPrune: *prune,
		Strategy:     strat,
	})

	health := obs.NewHealth()
	health.SetReady("collector", false)

	// Shutdown hooks run newest-first: stop accepting, then persist.
	// "rollup-push" and "final-snapshot" are registered before
	// "serve-stop" so they capture everything the listener ingested
	// before it closed.
	if *rollup != "" {
		name := *shardID
		if name == "" {
			name = *listen
		}
		health.OnShutdown("rollup-push", func() {
			if err := shard.PushState(*rollup, name, c.ExportState(), 0); err != nil {
				fmt.Fprintln(os.Stderr, "actd: rollup push:", err)
			}
		})
	}
	if *snapshot != "" {
		health.OnShutdown("final-snapshot", func() {
			if err := c.Snapshot(""); err != nil {
				fmt.Fprintln(os.Stderr, "actd: final snapshot:", err)
			}
		})
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("actd: listening on %s\n", ln.Addr())
	if st := c.Stats(); *snapshot != "" {
		fmt.Printf("actd: snapshot %s (restored %d batches)\n", *snapshot, st.Batches)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := c.Serve(ln); err != nil {
			fmt.Fprintln(os.Stderr, "actd: serve:", err)
		}
	}()
	health.OnShutdown("serve-stop", func() {
		c.Shutdown()
		<-done
	})
	health.SetReady("collector", true)

	if *metrics != "" {
		reg := obs.NewRegistry()
		c.RegisterMetrics(reg)
		reg.GaugeFunc("act_up", "1 while the process is serving.", func() float64 { return 1 })
		srv, err := obs.StartServer(*metrics, health, reg, obs.Default)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("actd: metrics on http://%s/metrics\n", srv.Addr())
		defer srv.Close()
	}

	if *snapshot != "" && *every > 0 {
		go func() {
			t := time.NewTicker(*every)
			defer t.Stop()
			for range t.C {
				if err := c.Snapshot(""); err != nil {
					fmt.Fprintln(os.Stderr, "actd: snapshot:", err)
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	// A fatal accept error closes done without a signal; drain the same
	// way instead of blocking on a signal that may never come.
	select {
	case <-sig:
	case <-done:
	}
	health.Shutdown()

	st := c.Stats()
	fmt.Printf("actd: %d batches from %d connections (%d dups dropped, %d corrupt spans, %d bytes skipped)\n",
		st.Batches, st.Conns, st.DupBatches, st.BadSpans, st.SkippedBytes)
	c.Report().Write(os.Stdout, *top)
}

func parseStrategy(s string) (ranking.Strategy, error) {
	switch s {
	case "most-matched":
		return ranking.MostMatched, nil
	case "most-mismatched":
		return ranking.MostMismatched, nil
	case "output":
		return ranking.OutputOnly, nil
	}
	return 0, fmt.Errorf("unknown strategy %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "actd:", err)
	os.Exit(1)
}
