// Command actd is the fleet collector daemon: it listens for actagent
// (or act.ShipTo) connections, merges Debug Buffer batches from the
// whole fleet with dedup and cross-run occurrence counting, and prints
// the ranked report — sequences seen in many failing runs but few
// correct ones first.
//
// Usage:
//
//	actd -listen :7077
//	actd -listen :7077 -snapshot /var/lib/actd.snap -snapshot-every 30s
//
// SIGINT/SIGTERM snapshots the state (when -snapshot is set), prints
// the final ranked report, and exits.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"act/internal/fleet"
	"act/internal/ranking"
)

func main() {
	var (
		listen   = flag.String("listen", ":7077", "address to accept agent connections on")
		snapshot = flag.String("snapshot", "", "snapshot file for state across restarts")
		every    = flag.Duration("snapshot-every", time.Minute, "periodic snapshot interval (with -snapshot)")
		top      = flag.Int("top", 10, "ranked sequences to print")
		prune    = flag.Int("correct-prune", 1, "correct runs that must log a sequence before it is pruned")
		strategy = flag.String("strategy", "most-matched", "within-run-count order: most-matched, most-mismatched, output")
	)
	flag.Parse()

	strat, err := parseStrategy(*strategy)
	if err != nil {
		fatal(err)
	}
	c := fleet.NewCollector(fleet.CollectorConfig{
		SnapshotPath: *snapshot,
		CorrectPrune: *prune,
		Strategy:     strat,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("actd: listening on %s\n", ln.Addr())
	if st := c.Stats(); *snapshot != "" {
		fmt.Printf("actd: snapshot %s (restored %d batches)\n", *snapshot, st.Batches)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := c.Serve(ln); err != nil {
			fmt.Fprintln(os.Stderr, "actd: serve:", err)
		}
	}()

	if *snapshot != "" && *every > 0 {
		go func() {
			t := time.NewTicker(*every)
			defer t.Stop()
			for range t.C {
				if err := c.Snapshot(""); err != nil {
					fmt.Fprintln(os.Stderr, "actd: snapshot:", err)
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	c.Shutdown()
	<-done

	if *snapshot != "" {
		if err := c.Snapshot(""); err != nil {
			fmt.Fprintln(os.Stderr, "actd: final snapshot:", err)
		}
	}
	st := c.Stats()
	fmt.Printf("actd: %d batches from %d connections (%d dups dropped, %d corrupt spans, %d bytes skipped)\n",
		st.Batches, st.Conns, st.DupBatches, st.BadSpans, st.SkippedBytes)
	c.Report().Write(os.Stdout, *top)
}

func parseStrategy(s string) (ranking.Strategy, error) {
	switch s {
	case "most-matched":
		return ranking.MostMatched, nil
	case "most-mismatched":
		return ranking.MostMismatched, nil
	case "output":
		return ranking.OutputOnly, nil
	}
	return 0, fmt.Errorf("unknown strategy %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "actd:", err)
	os.Exit(1)
}
