// Command actfault runs the fault-injection campaign: for each bug
// workload it trains and deploys the clean ACT pipeline once, then
// replays the same failing execution under injected faults — corrupted
// trace bytes, degraded dependence streams, weight-bit upsets — and
// reports how diagnosis capability degrades with fault type and rate.
//
// Usage:
//
//	actfault                             # default sweep over apache
//	actfault -bugs apache,gzip -rates 0.001,0.01,0.1
//	actfault -kinds weight-seu,dep-stale -seed 42
//	actfault -net                        # transport campaign (agent -> collector)
//	actfault -net -net-kinds net-cut,net-dup
//	actfault -fleet                      # fleet-topology campaign (sharded tier)
//	actfault -fleet -fleet-kinds shard-kill,shard-restart -fleet-sweeps 3
//	actfault -list                       # show fault kinds and bugs
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"act/internal/faults"
	"act/internal/train"
	"act/internal/workloads"
)

func main() {
	var (
		bugs  = flag.String("bugs", "apache", "comma-separated bug workloads")
		kinds = flag.String("kinds", "all", "comma-separated fault kinds (see -list)")
		rates = flag.String("rates", "0.001,0.01,0.05", "comma-separated per-record fault rates")
		seed  = flag.Int64("seed", 1, "campaign master seed")
		full  = flag.Bool("full", false, "paper-scale training budget per bug")
		list  = flag.Bool("list", false, "list fault kinds and bug workloads, then exit")

		net       = flag.Bool("net", false, "run the transport campaign (agent -> collector wire faults) instead")
		netKinds  = flag.String("net-kinds", "all", "comma-separated transport fault kinds")
		netFail   = flag.Int("net-failing", 3, "failing runs in the synthetic fleet traffic")
		netOK     = flag.Int("net-correct", 2, "correct runs in the synthetic fleet traffic")
		netSweeps = flag.Int("net-sweeps", 10, "seeds swept (victim and damage positions vary per seed)")

		fleetRun    = flag.Bool("fleet", false, "run the fleet-topology campaign (shard kill/partition/restart) instead")
		fleetKinds  = flag.String("fleet-kinds", "all", "comma-separated fleet fault kinds")
		fleetShards = flag.Int("fleet-shards", 3, "shard collectors per arm")
		fleetRounds = flag.Int("fleet-rounds", 3, "traffic rounds per arm (faults land at round boundaries)")
		fleetSweeps = flag.Int("fleet-sweeps", 5, "seeds swept (victim shard and injection round vary per seed)")
	)
	flag.Parse()

	if *list {
		fmt.Println("fault kinds:")
		for _, k := range faults.AllKinds() {
			fmt.Printf("  %s\n", k)
		}
		fmt.Println("transport fault kinds (-net):")
		for _, k := range faults.AllNetKinds() {
			fmt.Printf("  %s\n", k)
		}
		fmt.Println("fleet fault kinds (-fleet):")
		for _, k := range faults.AllFleetKinds() {
			fmt.Printf("  %s\n", k)
		}
		fmt.Println("bug workloads:")
		for _, b := range workloads.RealBugs() {
			fmt.Printf("  %-10s %s\n", b.Name, b.Desc)
		}
		return
	}

	if *net {
		if err := runNet(*netKinds, *seed, *netFail, *netOK, *netSweeps); err != nil {
			fatal(err)
		}
		return
	}

	if *fleetRun {
		if err := runFleet(*fleetKinds, *seed, *fleetShards, *fleetRounds, *fleetSweeps); err != nil {
			fatal(err)
		}
		return
	}

	ks, err := faults.ParseKinds(*kinds)
	if err != nil {
		fatal(err)
	}
	rs, err := parseRates(*rates)
	if err != nil {
		fatal(err)
	}

	cfg := faults.CampaignConfig{
		Bugs:  strings.Split(*bugs, ","),
		Kinds: ks,
		Rates: rs,
		Seed:  *seed,
	}
	if *full {
		// Paper-scale topology search (the trainer's own full grid).
		cfg.TrainRuns, cfg.TestRuns, cfg.CorrectSetRuns = 20, 6, 20
		cfg.Train = train.Config{
			Ns:   []int{1, 2, 3, 4, 5},
			Hs:   []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
			Seed: 1,
		}
	}

	res, err := faults.RunCampaign(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Render())
	fmt.Printf("\ndetection rate under fault: %.0f%% (%d/%d arms)\n",
		100*res.DetectionRate(), detected(res), len(res.Rows))
}

// runNet sweeps the transport campaign over several seeds so the
// random victim batch and damage positions cover the traffic, and
// reports whether any arm's ranked output ever diverged.
func runNet(kinds string, seed int64, failing, correct, sweeps int) error {
	ks, err := faults.ParseNetKinds(kinds)
	if err != nil {
		return err
	}
	traffic := faults.SyntheticFleetTraffic(failing, correct)
	fmt.Printf("traffic: %d failing + %d correct runs, %d batches\n\n", failing, correct, len(traffic))
	unchanged, arms := 0, 0
	for s := seed; s < seed+int64(sweeps); s++ {
		res, err := faults.RunNetCampaign(traffic, faults.NetCampaignConfig{Kinds: ks, Seed: s})
		if err != nil {
			return err
		}
		if s == seed {
			fmt.Print(res.Render())
		}
		for _, row := range res.Rows {
			arms++
			if row.Unchanged {
				unchanged++
			}
		}
	}
	fmt.Printf("\nranked output unchanged under transport faults: %d/%d arms (%d seeds)\n",
		unchanged, arms, sweeps)
	if unchanged != arms {
		os.Exit(2)
	}
	return nil
}

// runFleet sweeps the fleet-topology campaign over several seeds so the
// victim shard and injection round vary, and exits 2 if any arm's
// invariant — byte-identical merged report for lossless faults,
// annotated degradation for lossy ones — is violated.
func runFleet(kinds string, seed int64, shards, rounds, sweeps int) error {
	ks, err := faults.ParseFleetKinds(kinds)
	if err != nil {
		return err
	}
	violations, arms := 0, 0
	for s := seed; s < seed+int64(sweeps); s++ {
		res, err := faults.RunFleetCampaign(faults.FleetCampaignConfig{
			Kinds:  ks,
			Seed:   s,
			Shards: shards,
			Rounds: rounds,
		})
		if err != nil {
			return err
		}
		if s == seed {
			fmt.Printf("topology: %d shards, %d rounds per arm\n\n", shards, rounds)
			fmt.Print(res.Render())
		}
		violations += res.Violations()
		arms += len(res.Rows)
	}
	fmt.Printf("\nfleet invariants held: %d/%d arms (%d seeds)\n", arms-violations, arms, sweeps)
	if violations > 0 {
		os.Exit(2)
	}
	return nil
}

func detected(r *faults.Result) int {
	n := 0
	for _, row := range r.Rows {
		if row.Detected {
			n++
		}
	}
	return n
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "actfault:", err)
	os.Exit(1)
}
