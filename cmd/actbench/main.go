// Command actbench regenerates the tables and figures of the paper's
// evaluation (Section VI). Each experiment prints the same rows/series
// the paper reports; see EXPERIMENTS.md for the paper-vs-measured
// comparison.
//
// Usage:
//
//	actbench -exp all            # everything, quick scale
//	actbench -exp table5 -full   # one experiment at paper scale
//	actbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"act/internal/bench"
	"act/internal/nnhw"
)

type experiment struct {
	name string
	desc string
	run  func(bench.Mode) (string, error)
}

var experiments = []experiment{
	{"table4", "Table IV: offline training of the neural networks", func(m bench.Mode) (string, error) {
		rows, err := bench.TableIV(m)
		return bench.RenderTableIV(rows), err
	}},
	{"fig7a", "Fig 7(a): misprediction on synthesized invalid dependences", func(m bench.Mode) (string, error) {
		rows, err := bench.Fig7a(m)
		return bench.RenderFig7a(rows), err
	}},
	{"fig7b", "Fig 7(b): prediction on new (held-out) code", func(m bench.Mode) (string, error) {
		rows, err := bench.Fig7b(m)
		return bench.RenderFig7b(rows), err
	}},
	{"table5", "Table V: diagnosis of real bugs vs Aviso and PBI", func(m bench.Mode) (string, error) {
		rows, err := bench.TableV(m)
		return bench.RenderTableV(rows), err
	}},
	{"table6", "Table VI: injected bugs in new code", func(m bench.Mode) (string, error) {
		rows, err := bench.TableVI(m)
		return bench.RenderTableVI(rows), err
	}},
	{"fig8", "Fig 8: execution overhead (default design point)", func(m bench.Mode) (string, error) {
		rows, err := bench.Fig8(m, nnhw.Config{})
		return bench.RenderFig8(rows), err
	}},
	{"fig9", "Fig 9: sensitivity to multiply-add units and FIFO depth", func(m bench.Mode) (string, error) {
		rows, err := bench.Fig9(m)
		return bench.RenderFig9(rows), err
	}},
	{"fig10", "Fig 10: false-sharing impact of last-writer granularity", func(m bench.Mode) (string, error) {
		rows, err := bench.Fig10(m)
		return bench.RenderFig10(rows), err
	}},
	{"nndesign", "Sec IV-A: pipelined NN vs fully configurable NPU", func(bench.Mode) (string, error) {
		return bench.RenderNNDesign(bench.NNDesign()), nil
	}},
	{"ablation-encoding", "Ablation: feature encoding", func(m bench.Mode) (string, error) {
		rows, err := bench.AblationEncoding(m)
		return bench.RenderAblation("Encoding", rows), err
	}},
	{"ablation-negatives", "Ablation: negative-example strategy", func(m bench.Mode) (string, error) {
		rows, err := bench.AblationNegatives(m)
		return bench.RenderAblation("Negatives", rows), err
	}},
	{"ablation-threshold", "Ablation: misprediction threshold", func(m bench.Mode) (string, error) {
		rows, err := bench.AblationThreshold(m)
		return bench.RenderThreshold(rows), err
	}},
	{"ablation-quantization", "Ablation: fixed-point weight-register precision", func(m bench.Mode) (string, error) {
		rows, err := bench.AblationQuantization(m)
		return bench.RenderQuantization(rows), err
	}},
	{"ablation-ranking", "Ablation: postprocessing ranking strategy", func(m bench.Mode) (string, error) {
		rows, err := bench.AblationRanking(m)
		return bench.RenderRanking(rows), err
	}},
	{"pipeline", "Monitoring-pipeline throughput: sequential vs parallel replay", func(m bench.Mode) (string, error) {
		rep, err := bench.Pipeline(m)
		if err != nil {
			return "", err
		}
		if err := writeJSON(bench.MarshalPipeline(rep)); err != nil {
			return "", err
		}
		return bench.RenderPipeline(rep), nil
	}},
	{"obs", "Observability overhead: instrumented replay with vs without a live scraper", func(m bench.Mode) (string, error) {
		rep, err := bench.Obs(m)
		if err != nil {
			return "", err
		}
		if err := writeJSON(bench.MarshalObs(rep)); err != nil {
			return "", err
		}
		return bench.RenderObs(rep), nil
	}},
	{"fleet", "Sharded-tier ingest and rollup: healthy ring vs one shard killed mid-ingest", func(m bench.Mode) (string, error) {
		rep, err := bench.Fleet(m)
		if err != nil {
			return "", err
		}
		if err := writeJSON(bench.MarshalFleet(rep)); err != nil {
			return "", err
		}
		return bench.RenderFleet(rep), nil
	}},
	{"rca", "RCA calibration: verdict accuracy on the labeled bug campaigns", func(m bench.Mode) (string, error) {
		rep, err := bench.RCA(m)
		if err != nil {
			return "", err
		}
		if err := writeJSON(bench.MarshalRCA(rep)); err != nil {
			return "", err
		}
		return bench.RenderRCA(rep), nil
	}},
}

// jsonPath is the -json destination; empty means no JSON output. The
// pipeline, obs, fleet, and rca experiments emit JSON
// (BENCH_pipeline.json / BENCH_obs.json / BENCH_fleet.json /
// BENCH_rca.json, see EXPERIMENTS.md).
var jsonPath string

func writeJSON(b []byte, err error) error {
	if err != nil || jsonPath == "" {
		return err
	}
	return os.WriteFile(jsonPath, append(b, '\n'), 0o644)
}

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment to run (see -list), or comma list, or 'all'")
		full = flag.Bool("full", false, "paper-scale parameters (slow)")
		list = flag.Bool("list", false, "list experiments")
	)
	flag.StringVar(&jsonPath, "json", "", "write results as JSON to this path (pipeline and obs experiments)")
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("  %-20s %s\n", e.name, e.desc)
		}
		return
	}
	mode := bench.Quick
	if *full {
		mode = bench.Full
	}

	want := map[string]bool{}
	for _, n := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(n)] = true
	}
	ranAny := false
	for _, e := range experiments {
		if !want["all"] && !want[e.name] {
			continue
		}
		ranAny = true
		fmt.Printf("=== %s — %s ===\n", e.name, e.desc)
		out, err := e.run(mode)
		if err != nil {
			fmt.Fprintf(os.Stderr, "actbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if !ranAny {
		fmt.Fprintf(os.Stderr, "actbench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(1)
	}
}
