// Command acttrace collects execution traces from the built-in workload
// programs — the reproduction's stand-in for PIN-based binary
// instrumentation. Traces are written in the binary format consumed by
// acttrain and actdiag.
//
// Usage:
//
//	acttrace -workload lu -seed 3 -o lu.trace
//	acttrace -bug apache -outcome fail -seed-base 100000 -o apache-fail.trace
//	acttrace -workload mcf -dump          # human-readable listing to stdout
package main

import (
	"flag"
	"fmt"
	"os"

	"act/internal/trace"
	"act/internal/vm"
	"act/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "kernel to trace (see -list)")
		bug      = flag.String("bug", "", "bug program to trace instead of a kernel")
		outcome  = flag.String("outcome", "any", "for -bug: require an outcome: ok, fail, any")
		seed     = flag.Int64("seed", 1, "input/interleaving seed")
		seedBase = flag.Int64("seed-base", 0, "for -bug with an outcome: first seed to try")
		out      = flag.String("o", "", "output file (default stdout dump)")
		dump     = flag.Bool("dump", false, "write a human-readable listing instead of binary")
		list     = flag.Bool("list", false, "list available workloads and bugs")
	)
	flag.Parse()

	if *list {
		fmt.Println("kernels:")
		for _, w := range workloads.Kernels() {
			fmt.Printf("  %-14s %-8s %d thread(s)\n", w.Name, w.Suite, w.Threads)
		}
		fmt.Println("bugs:")
		for _, b := range workloads.RealBugs() {
			fmt.Printf("  %-14s %-6s %s\n", b.Name, b.Status, b.Desc)
		}
		for _, ib := range workloads.InjectedBugs() {
			fmt.Printf("  %-14s %-6s %s\n", ib.Name, ib.Status, ib.Desc)
		}
		return
	}

	tr, res, err := collect(*workload, *bug, *outcome, *seed, *seedBase)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "traced %s: %d records, %d instructions, failed=%v\n",
		tr.Program, len(tr.Records), tr.Steps, res.Failed)

	switch {
	case *out != "":
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := tr.Write(f); err != nil {
			fatal(err)
		}
	case *dump:
		if err := tr.Dump(os.Stdout); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("need -o FILE or -dump"))
	}
}

func collect(workload, bug, outcome string, seed, seedBase int64) (*trace.Trace, *vm.Result, error) {
	switch {
	case workload != "":
		w, err := workloads.KernelByName(workload)
		if err != nil {
			return nil, nil, err
		}
		tr, res := trace.Collect(w.Build(seed), w.Sched(seed))
		return tr, res, nil
	case bug != "":
		b, err := workloads.BugByName(bug)
		if err != nil {
			return nil, nil, err
		}
		switch outcome {
		case "any":
			p, sched := b.Gen(seed)
			tr, res := trace.Collect(p, sched)
			return tr, res, nil
		case "ok", "fail":
			runs, err := workloads.CollectOutcome(b, outcome == "fail", 1, seedBase)
			if err != nil {
				return nil, nil, err
			}
			return runs[0].Trace, runs[0].Result, nil
		default:
			return nil, nil, fmt.Errorf("unknown -outcome %q", outcome)
		}
	default:
		return nil, nil, fmt.Errorf("need -workload or -bug (try -list)")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "acttrace:", err)
	os.Exit(1)
}
