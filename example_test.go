package act_test

import (
	"fmt"

	"act"
	"act/internal/trace"
	"act/internal/workloads"
)

// Example demonstrates the complete workflow: train on correct runs of
// the pbzip2 workload, deploy, replay a failing execution, and diagnose
// the order violation — without reproducing the failure.
func Example() {
	bug, _ := workloads.BugByName("pbzip2")

	correct, _ := workloads.CollectOutcome(bug, false, 12, 0)
	var trainTr, testTr []*act.Trace
	for i, r := range correct {
		if i < 9 {
			trainTr = append(trainTr, r.Trace)
		} else {
			testTr = append(testTr, r.Trace)
		}
	}
	model, err := act.Train(trainTr, testTr)
	if err != nil {
		fmt.Println("train:", err)
		return
	}

	failing, _ := workloads.CollectOutcome(bug, true, 1, 100_000)
	mon := act.Deploy(model, failing[0].Program.NumThreads())
	mon.Replay(failing[0].Trace)

	prune, _ := workloads.CollectOutcome(bug, false, 10, 50_000)
	var pruneTr []*act.Trace
	for _, r := range prune {
		pruneTr = append(pruneTr, r.Trace)
	}
	report := act.Diagnose(mon.DebugBuffer(), pruneTr, model.SequenceLength())

	rank := report.RankOf(bug.Matcher(failing[0].Program))
	fmt.Printf("root cause ranked #%d\n", rank)
	// Output: root cause ranked #1
}

// ExampleMonitor_OnLoad shows feeding a deployed monitor by hand — the
// integration point for user instrumentation.
func ExampleMonitor_OnLoad() {
	w, _ := workloads.KernelByName("mcf")
	var trainTr, testTr []*act.Trace
	for s := int64(0); s < 8; s++ {
		tr, _ := trace.Collect(w.Build(s), w.Sched(s))
		trainTr = append(trainTr, tr)
	}
	for s := int64(10_000); s < 10_004; s++ {
		tr, _ := trace.Collect(w.Build(s), w.Sched(s))
		testTr = append(testTr, tr)
	}
	model, _ := act.Train(trainTr, testTr)

	mon := act.Deploy(model, 1)
	mon.OnStore(0, 0x401000, 0x10000000) // thread 0: store at pc, addr
	mon.OnLoad(0, 0x401004, 0x10000000)  // the load closes a dependence
	fmt.Println("dependences observed:", mon.Stats().Deps)
	// Output: dependences observed: 1
}
